package harness

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/backend"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
)

// plusOperation is the SOAP Plus handler shared by the backend
// experiments' replicas.
var plusOperation = map[string]soap.Operation{
	"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
		x, _ := strconv.Atoi(findParam(params, "x"))
		y, _ := strconv.Atoi(findParam(params, "y"))
		return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
	},
}

// newBackendMediator builds a GIOP Add -> SOAP Plus mediator whose
// service side targets a backend replica set, with its own listener.
func newBackendMediator(sets map[string]*backend.Set, target string, retry *engine.RetryPolicy) (*engine.Mediator, error) {
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		return nil, err
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		return nil, err
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: target},
		},
		Backends:        sets,
		ExchangeTimeout: 5 * time.Second,
		Retry:           retry,
	})
	if err != nil {
		return nil, err
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		med.Close()
		return nil, err
	}
	return med, nil
}

// replicaSnap finds one replica's snapshot in the mediator's backend
// view.
func replicaSnap(med *engine.Mediator, set, addr string) (backend.ReplicaSnapshot, bool) {
	for _, ss := range med.Backends() {
		if ss.Name != set {
			continue
		}
		for _, rs := range ss.Replicas {
			if rs.Addr == addr {
				return rs, true
			}
		}
	}
	return backend.ReplicaSnapshot{}, false
}

// E17 soaks a three-replica backend set through a replica outage: churning
// IIOP clients (each session dials, invokes, hangs up, so every session is
// a fresh balancing decision) keep flowing while one SOAP replica is
// killed. The set must eject it — flushing its pooled connections, with
// the in-flight fault recovered by a redial onto a survivor — and the
// soak must continue on the two survivors with ZERO client-visible
// failures. The replica is then restarted on the same address and the
// active prober must re-admit it and traffic must return to it.
func E17() Result {
	r := Result{ID: "E17", Artifact: "replica eject+readmit soak"}

	// Three replicas of the same SOAP Plus service.
	srvs := make([]*soap.Server, 3)
	addrs := make([]string, 3)
	for i := range srvs {
		srv, err := soap.NewServer("127.0.0.1:0", "/soap", plusOperation)
		if err != nil {
			r.Err = err
			return r
		}
		defer srv.Close()
		srvs[i], addrs[i] = srv, srv.Addr()
	}

	// Tight timings so the whole outage arc — eject, cooloff, probation,
	// probe re-admission — fits in an experiment, not a deployment.
	set, err := backend.New("plus", addrs, backend.Options{
		Policy:        backend.RoundRobin,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailThreshold: 2,
		Cooloff:       100 * time.Millisecond,
		MaxCooloff:    time.Second,
		MinLive:       1,
	})
	if err != nil {
		r.Err = err
		return r
	}
	med, err := newBackendMediator(map[string]*backend.Set{"plus": set}, "plus",
		&engine.RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
	if err != nil {
		r.Err = err
		return r
	}
	defer med.Close()

	// Churning soak clients: service links are sticky for a session's
	// lifetime, so rebalancing is only visible to sessions that hang up
	// and come back — exactly what short-lived clients do.
	var (
		wg       sync.WaitGroup
		flows    atomic.Int64
		stop     = make(chan struct{})
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	const clients = 6
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				client, err := giop.Dial(med.Addr(), "calc")
				if err != nil {
					fail(fmt.Errorf("client %d dial: %w", n, err))
					return
				}
				for f := 0; f < 3; f++ {
					results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
					if err != nil {
						client.Close()
						fail(fmt.Errorf("client %d: %w", n, err))
						return
					}
					if got := results[0].ValueString(); got != "42" {
						client.Close()
						fail(fmt.Errorf("client %d: Add = %s", n, got))
						return
					}
					flows.Add(1)
				}
				client.Close()
			}
		}(i)
	}
	soakErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}
	// waitFor polls cond until it holds, surfacing a soak failure (or the
	// timeout) as the experiment error.
	waitFor := func(what string, cond func() bool) error {
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if err := soakErr(); err != nil {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	finish := func(err error) Result {
		close(stop)
		wg.Wait()
		if err == nil {
			err = soakErr()
		}
		r.Err = err
		return r
	}

	// Phase 1: all three replicas take traffic.
	if err := waitFor("traffic on every replica", func() bool {
		if flows.Load() < 30 {
			return false
		}
		for _, addr := range addrs {
			if rs, ok := replicaSnap(med, "plus", addr); !ok || rs.Successes == 0 {
				return false
			}
		}
		return true
	}); err != nil {
		return finish(err)
	}

	// Phase 2: kill replica 0 mid-soak. The fault on its in-flight
	// exchange is redialled onto a survivor; repeated failures eject it.
	srvs[0].Close()
	if err := waitFor("ejection of the killed replica", func() bool {
		rs, ok := replicaSnap(med, "plus", addrs[0])
		return ok && !rs.Live && rs.Ejections > 0
	}); err != nil {
		return finish(err)
	}

	// Phase 3: the soak rebalances onto the survivors — both keep
	// accumulating successes while the dead replica cools off.
	base := make([]uint64, len(addrs))
	for i, addr := range addrs[1:] {
		rs, _ := replicaSnap(med, "plus", addr)
		base[i+1] = rs.Successes
	}
	if err := waitFor("rebalanced traffic on both survivors", func() bool {
		for _, addr := range addrs[1:] {
			rs, ok := replicaSnap(med, "plus", addr)
			if !ok || rs.Successes == 0 {
				return false
			}
		}
		a, _ := replicaSnap(med, "plus", addrs[1])
		b, _ := replicaSnap(med, "plus", addrs[2])
		return a.Successes > base[1] && b.Successes > base[2]
	}); err != nil {
		return finish(err)
	}

	// Phase 4: restart the replica on its old address; the prober must
	// re-admit it and round-robin must send sessions back to it.
	var restarted *soap.Server
	rebindDeadline := time.Now().Add(5 * time.Second)
	for {
		restarted, err = soap.NewServer(addrs[0], "/soap", plusOperation)
		if err == nil {
			break
		}
		if time.Now().After(rebindDeadline) {
			return finish(fmt.Errorf("rebind %s: %w", addrs[0], err))
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer restarted.Close()
	preReadmit, _ := replicaSnap(med, "plus", addrs[0])
	if err := waitFor("re-admission of the restarted replica", func() bool {
		rs, ok := replicaSnap(med, "plus", addrs[0])
		return ok && rs.Live
	}); err != nil {
		return finish(err)
	}
	if err := waitFor("traffic back on the restarted replica", func() bool {
		rs, ok := replicaSnap(med, "plus", addrs[0])
		return ok && rs.Successes > preReadmit.Successes
	}); err != nil {
		return finish(err)
	}

	if res := finish(nil); res.Err != nil {
		return res
	}
	st := med.Stats()
	if st.Failures != 0 {
		r.Err = fmt.Errorf("client-visible failures = %d, want 0 across the outage", st.Failures)
		return r
	}
	if st.Redials == 0 {
		r.Err = errors.New("no redials: the outage never hit an in-flight exchange")
		return r
	}
	snap, _ := replicaSnap(med, "plus", addrs[0])
	var readmissions uint64
	for _, ss := range med.Backends() {
		if ss.Name == "plus" {
			readmissions = ss.Readmissions
		}
	}
	r.Detail = fmt.Sprintf("%d flows, 0 lost; replica ejected %dx, readmitted (%d), %d redial(s), %d probes",
		flows.Load(), snap.Ejections, readmissions, st.Redials, snap.Probes)
	if readmissions == 0 {
		r.Err = errors.New("set recorded no re-admissions")
	}
	return r
}

// BalancePoint is one concurrency level of the balancer-overhead
// measurement: per-flow latency with the service side dialling a fixed
// address vs picking from a (single-replica) backend set.
type BalancePoint struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int `json:"sessions"`
	// DirectNsPerFlow and BalancedNsPerFlow are mean wall nanoseconds
	// per mediated flow against the fixed-target resp. set-balanced
	// mediator.
	DirectNsPerFlow   float64 `json:"direct_ns_per_flow"`
	BalancedNsPerFlow float64 `json:"balanced_ns_per_flow"`
	// OverheadPct is (balanced-direct)/direct in percent.
	OverheadPct float64 `json:"overhead_pct"`
}

// BalanceBench is the full balancer benchmark artifact
// (BENCH_balance.json).
type BalanceBench struct {
	// Points are the per-concurrency overhead measurements.
	Points []BalancePoint `json:"points"`
}

// MeasureBalanceOverhead runs the GIOP Add -> SOAP Plus workload at each
// concurrency level against a mediator dialling the service address
// directly and against one routing every checkout through a
// single-replica p2c backend set with the active prober running — so the
// delta is pure balancing machinery (pick, in-flight accounting, outcome
// reporting, EWMA) over the same wire path. The benchharness -balance
// flag writes this as BENCH_balance.json.
func MeasureBalanceOverhead(sessionCounts []int, flowsPerSession int) (*BalanceBench, error) {
	plus, err := soap.NewServer("127.0.0.1:0", "/soap", plusOperation)
	if err != nil {
		return nil, err
	}
	defer plus.Close()

	direct, err := newBackendMediator(nil, plus.Addr(), nil)
	if err != nil {
		return nil, err
	}
	defer direct.Close()
	set, err := backend.New("plus", []string{plus.Addr()}, backend.Options{
		Policy:        backend.PowerOfTwo,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	balanced, err := newBackendMediator(map[string]*backend.Set{"plus": set}, "plus", nil)
	if err != nil {
		return nil, err
	}
	defer balanced.Close()

	runOnce := func(addr string, sessions int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := giop.Dial(addr, "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				for f := 0; f < flowsPerSession; f++ {
					if _, err := client.Invoke("Add", giop.IntParam(2), giop.IntParam(3)); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return elapsed / time.Duration(sessions*flowsPerSession), nil
	}
	// Best-of-N after a warmup run, as in MeasureGatewayOverhead: the
	// minimum is the measurement least polluted by scheduler noise.
	run := func(addr string, sessions int) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < 7; i++ {
			d, err := runOnce(addr, sessions)
			if err != nil {
				return 0, err
			}
			if i == 0 { // warmup: prime pools, codecs and the page cache
				continue
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	bench := &BalanceBench{}
	for _, sessions := range sessionCounts {
		d, err := run(direct.Addr(), sessions)
		if err != nil {
			return nil, err
		}
		b, err := run(balanced.Addr(), sessions)
		if err != nil {
			return nil, err
		}
		bench.Points = append(bench.Points, BalancePoint{
			Sessions:          sessions,
			DirectNsPerFlow:   float64(d.Nanoseconds()),
			BalancedNsPerFlow: float64(b.Nanoseconds()),
			OverheadPct:       100 * float64(b-d) / float64(d),
		})
	}
	return bench, nil
}
