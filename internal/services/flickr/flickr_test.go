package flickr

import (
	"errors"
	"strconv"
	"testing"

	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
)

func startService(t *testing.T) (*Service, *photostore.Store) {
	t.Helper()
	store := photostore.New()
	svc, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, store
}

func TestXMLRPCSearchGetInfoCommentsFlow(t *testing.T) {
	svc, _ := startService(t)
	c := xmlrpc.NewClient(svc.XMLRPCAddr(), XMLRPCPath)
	defer c.Close()

	// Search (Fig. 1 signature: one struct param).
	v, err := c.Call(MethodSearch, map[string]xmlrpc.Value{
		"api_key": "k", "text": "tree", "per_page": int64(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := v.(map[string]xmlrpc.Value)
	photos := res["photos"].([]xmlrpc.Value)
	if len(photos) != 3 {
		t.Fatalf("photos = %d", len(photos))
	}
	first := photos[0].(map[string]xmlrpc.Value)
	id := first["id"].(string)

	// getInfo resolves the URL.
	v, err = c.Call(MethodGetInfo, map[string]xmlrpc.Value{"api_key": "k", "photo_id": id})
	if err != nil {
		t.Fatal(err)
	}
	info := v.(map[string]xmlrpc.Value)
	if info["url"] == "" || info["title"] == "" {
		t.Errorf("info = %v", info)
	}

	// Comments list + add.
	v, err = c.Call(MethodGetComments, map[string]xmlrpc.Value{"photo_id": id})
	if err != nil {
		t.Fatal(err)
	}
	before := len(v.(map[string]xmlrpc.Value)["comments"].([]xmlrpc.Value))

	v, err = c.Call(MethodAddComment, map[string]xmlrpc.Value{
		"photo_id": id, "comment_text": "lovely",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.(map[string]xmlrpc.Value)["comment_id"] == "" {
		t.Error("no comment id")
	}

	v, err = c.Call(MethodGetComments, map[string]xmlrpc.Value{"photo_id": id})
	if err != nil {
		t.Fatal(err)
	}
	after := len(v.(map[string]xmlrpc.Value)["comments"].([]xmlrpc.Value))
	if after != before+1 {
		t.Errorf("comments %d -> %d", before, after)
	}
}

func TestXMLRPCFaults(t *testing.T) {
	svc, _ := startService(t)
	c := xmlrpc.NewClient(svc.XMLRPCAddr(), XMLRPCPath)
	defer c.Close()
	var f *xmlrpc.Fault
	if _, err := c.Call(MethodSearch, map[string]xmlrpc.Value{"api_key": "k"}); !errors.As(err, &f) {
		t.Errorf("search without text err = %v", err)
	}
	if _, err := c.Call(MethodGetInfo, map[string]xmlrpc.Value{"photo_id": "nope"}); !errors.As(err, &f) {
		t.Errorf("getInfo on phantom err = %v", err)
	}
	if _, err := c.Call(MethodAddComment, map[string]xmlrpc.Value{"photo_id": "photo-0001"}); !errors.As(err, &f) {
		t.Errorf("empty comment err = %v", err)
	}
	if _, err := c.Call(MethodGetComments, map[string]xmlrpc.Value{"photo_id": "ghost"}); !errors.As(err, &f) {
		t.Errorf("comments on phantom err = %v", err)
	}
}

func TestXMLRPCTagsFallback(t *testing.T) {
	svc, _ := startService(t)
	c := xmlrpc.NewClient(svc.XMLRPCAddr(), XMLRPCPath)
	defer c.Close()
	v, err := c.Call(MethodSearch, map[string]xmlrpc.Value{"tags": "cat"})
	if err != nil {
		t.Fatal(err)
	}
	if total := v.(map[string]xmlrpc.Value)["total"].(int64); total != 2 {
		t.Errorf("cat total = %d", total)
	}
}

func TestSOAPFlow(t *testing.T) {
	svc, store := startService(t)
	c := soap.NewClient(svc.SOAPAddr(), SOAPPath)
	defer c.Close()

	results, err := c.Call(MethodSearch,
		soap.Param{Name: "api_key", Value: "k"},
		soap.Param{Name: "text", Value: "tree"},
		soap.Param{Name: "per_page", Value: "2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	total := ""
	for _, p := range results {
		switch p.Name {
		case "photo_id":
			ids = append(ids, p.Value)
		case "total":
			total = p.Value
		}
	}
	if len(ids) != 2 || total != "2" {
		t.Fatalf("results = %+v", results)
	}

	info, err := c.Call(MethodGetInfo, soap.Param{Name: "photo_id", Value: ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	url := ""
	for _, p := range info {
		if p.Name == "url" {
			url = p.Value
		}
	}
	want, _ := store.Get(ids[0])
	if url != want.URL {
		t.Errorf("url = %q, want %q", url, want.URL)
	}

	added, err := c.Call(MethodAddComment,
		soap.Param{Name: "photo_id", Value: ids[0]},
		soap.Param{Name: "comment_text", Value: "via soap"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0].Name != "comment_id" {
		t.Errorf("added = %+v", added)
	}

	comments, err := c.Call(MethodGetComments, soap.Param{Name: "photo_id", Value: ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range comments {
		if p.Name == "comment" && p.Value == "flickr-user: via soap" {
			found = true
		}
	}
	if !found {
		t.Errorf("comment not listed: %+v", comments)
	}
}

func TestSOAPFaults(t *testing.T) {
	svc, _ := startService(t)
	c := soap.NewClient(svc.SOAPAddr(), SOAPPath)
	defer c.Close()
	var f *soap.Fault
	if _, err := c.Call(MethodSearch); !errors.As(err, &f) {
		t.Errorf("empty search err = %v", err)
	}
	if _, err := c.Call(MethodGetInfo, soap.Param{Name: "photo_id", Value: "nope"}); !errors.As(err, &f) {
		t.Errorf("phantom getInfo err = %v", err)
	}
	if _, err := c.Call(MethodAddComment, soap.Param{Name: "photo_id", Value: "photo-0001"}); !errors.As(err, &f) {
		t.Errorf("empty comment err = %v", err)
	}
	if _, err := c.Call(MethodGetComments, soap.Param{Name: "photo_id", Value: "ghost"}); !errors.As(err, &f) {
		t.Errorf("phantom comments err = %v", err)
	}
}

func TestBothFacesShareTheStore(t *testing.T) {
	svc, _ := startService(t)
	xc := xmlrpc.NewClient(svc.XMLRPCAddr(), XMLRPCPath)
	defer xc.Close()
	sc := soap.NewClient(svc.SOAPAddr(), SOAPPath)
	defer sc.Close()

	if _, err := xc.Call(MethodAddComment, map[string]xmlrpc.Value{
		"photo_id": "photo-0005", "comment_text": "from xmlrpc",
	}); err != nil {
		t.Fatal(err)
	}
	comments, err := sc.Call(MethodGetComments, soap.Param{Name: "photo_id", Value: "photo-0005"})
	if err != nil {
		t.Fatal(err)
	}
	if len(comments) != 1 {
		t.Errorf("cross-face comments = %+v", comments)
	}
}

func TestPerPageAsString(t *testing.T) {
	svc, _ := startService(t)
	c := xmlrpc.NewClient(svc.XMLRPCAddr(), XMLRPCPath)
	defer c.Close()
	v, err := c.Call(MethodSearch, map[string]xmlrpc.Value{"text": "tree", "per_page": "1"})
	if err != nil {
		t.Fatal(err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	if len(photos) != 1 {
		t.Errorf("photos = %d", len(photos))
	}
	_ = strconv.Itoa(0)
}
