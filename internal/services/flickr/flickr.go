// Package flickr simulates the Flickr web service of the case study
// (Section 2): the photo-search subset of its API served over both
// XML-RPC and SOAP, backed by a photostore corpus. The wire conventions
// follow the real API shape of Fig. 1: XML-RPC methods take a single
// struct parameter; responses carry <photos>/<photo> structures.
package flickr

import (
	"strconv"

	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
)

// Method names of the simulated API subset.
const (
	MethodSearch      = "flickr.photos.search"
	MethodGetInfo     = "flickr.photos.getInfo"
	MethodGetComments = "flickr.photos.comments.getList"
	MethodAddComment  = "flickr.photos.comments.addComment"
)

// XMLRPCPath and SOAPPath are the HTTP endpoints.
const (
	XMLRPCPath = "/services/xmlrpc"
	SOAPPath   = "/services/soap"
)

// Service serves the Flickr API over XML-RPC and SOAP.
type Service struct {
	store  *photostore.Store
	xmlrpc *xmlrpc.Server
	soap   *soap.Server
}

// New starts the service on two ephemeral ports (XML-RPC and SOAP) over
// the given store.
func New(store *photostore.Store) (*Service, error) {
	s := &Service{store: store}
	xs, err := xmlrpc.NewServer("127.0.0.1:0", XMLRPCPath, map[string]xmlrpc.Method{
		MethodSearch:      s.rpcSearch,
		MethodGetInfo:     s.rpcGetInfo,
		MethodGetComments: s.rpcGetComments,
		MethodAddComment:  s.rpcAddComment,
	})
	if err != nil {
		return nil, err
	}
	ss, err := soap.NewServer("127.0.0.1:0", SOAPPath, map[string]soap.Operation{
		MethodSearch:      s.soapSearch,
		MethodGetInfo:     s.soapGetInfo,
		MethodGetComments: s.soapGetComments,
		MethodAddComment:  s.soapAddComment,
	})
	if err != nil {
		xs.Close()
		return nil, err
	}
	s.xmlrpc = xs
	s.soap = ss
	return s, nil
}

// XMLRPCAddr returns the XML-RPC endpoint address.
func (s *Service) XMLRPCAddr() string { return s.xmlrpc.Addr() }

// SOAPAddr returns the SOAP endpoint address.
func (s *Service) SOAPAddr() string { return s.soap.Addr() }

// Close stops both servers.
func (s *Service) Close() error {
	err1 := s.xmlrpc.Close()
	err2 := s.soap.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// ---- XML-RPC face ----

func argStruct(params []xmlrpc.Value) map[string]xmlrpc.Value {
	if len(params) == 1 {
		if st, ok := params[0].(map[string]xmlrpc.Value); ok {
			return st
		}
	}
	return map[string]xmlrpc.Value{}
}

func strArg(st map[string]xmlrpc.Value, key string) string {
	switch v := st[key].(type) {
	case string:
		return v
	case int64:
		return strconv.FormatInt(v, 10)
	default:
		return ""
	}
}

func intArg(st map[string]xmlrpc.Value, key string) int {
	switch v := st[key].(type) {
	case int64:
		return int(v)
	case string:
		n, _ := strconv.Atoi(v)
		return n
	default:
		return 0
	}
}

func (s *Service) rpcSearch(params []xmlrpc.Value) (xmlrpc.Value, *xmlrpc.Fault) {
	st := argStruct(params)
	text := strArg(st, "text")
	if text == "" {
		text = strArg(st, "tags")
	}
	if text == "" {
		return nil, &xmlrpc.Fault{Code: 100, Message: "text or tags required"}
	}
	perPage := intArg(st, "per_page")
	photos := s.store.Search(text, perPage)
	var list []xmlrpc.Value
	for _, p := range photos {
		list = append(list, map[string]xmlrpc.Value{
			"id":    p.ID,
			"owner": p.Owner,
			"title": p.Title,
		})
	}
	return map[string]xmlrpc.Value{
		"photos": list,
		"total":  int64(len(list)),
	}, nil
}

func (s *Service) rpcGetInfo(params []xmlrpc.Value) (xmlrpc.Value, *xmlrpc.Fault) {
	st := argStruct(params)
	id := strArg(st, "photo_id")
	p, ok := s.store.Get(id)
	if !ok {
		return nil, &xmlrpc.Fault{Code: 1, Message: "Photo not found: " + id}
	}
	return map[string]xmlrpc.Value{
		"id":    p.ID,
		"title": p.Title,
		"owner": p.Owner,
		"url":   p.URL,
	}, nil
}

func (s *Service) rpcGetComments(params []xmlrpc.Value) (xmlrpc.Value, *xmlrpc.Fault) {
	st := argStruct(params)
	id := strArg(st, "photo_id")
	comments, err := s.store.Comments(id)
	if err != nil {
		return nil, &xmlrpc.Fault{Code: 1, Message: err.Error()}
	}
	var list []xmlrpc.Value
	for _, c := range comments {
		list = append(list, map[string]xmlrpc.Value{
			"id":     c.ID,
			"author": c.Author,
			"text":   c.Text,
		})
	}
	return map[string]xmlrpc.Value{"comments": list}, nil
}

func (s *Service) rpcAddComment(params []xmlrpc.Value) (xmlrpc.Value, *xmlrpc.Fault) {
	st := argStruct(params)
	id := strArg(st, "photo_id")
	text := strArg(st, "comment_text")
	if text == "" {
		return nil, &xmlrpc.Fault{Code: 100, Message: "comment_text required"}
	}
	c, err := s.store.AddComment(id, "flickr-user", text)
	if err != nil {
		return nil, &xmlrpc.Fault{Code: 1, Message: err.Error()}
	}
	return map[string]xmlrpc.Value{"comment_id": c.ID}, nil
}

// ---- SOAP face ----

func soapArg(params []soap.Param, name string) string {
	for _, p := range params {
		if p.Name == name {
			return p.Value
		}
	}
	return ""
}

func (s *Service) soapSearch(params []soap.Param) ([]soap.Param, *soap.Fault) {
	text := soapArg(params, "text")
	if text == "" {
		text = soapArg(params, "tags")
	}
	if text == "" {
		return nil, &soap.Fault{Code: "Client", Message: "text or tags required"}
	}
	perPage, _ := strconv.Atoi(soapArg(params, "per_page"))
	photos := s.store.Search(text, perPage)
	out := []soap.Param{{Name: "total", Value: strconv.Itoa(len(photos))}}
	for _, p := range photos {
		out = append(out, soap.Param{Name: "photo_id", Value: p.ID})
	}
	return out, nil
}

func (s *Service) soapGetInfo(params []soap.Param) ([]soap.Param, *soap.Fault) {
	id := soapArg(params, "photo_id")
	p, ok := s.store.Get(id)
	if !ok {
		return nil, &soap.Fault{Code: "Client", Message: "Photo not found: " + id}
	}
	return []soap.Param{
		{Name: "id", Value: p.ID},
		{Name: "title", Value: p.Title},
		{Name: "owner", Value: p.Owner},
		{Name: "url", Value: p.URL},
	}, nil
}

func (s *Service) soapGetComments(params []soap.Param) ([]soap.Param, *soap.Fault) {
	id := soapArg(params, "photo_id")
	comments, err := s.store.Comments(id)
	if err != nil {
		return nil, &soap.Fault{Code: "Client", Message: err.Error()}
	}
	var out []soap.Param
	for _, c := range comments {
		out = append(out, soap.Param{Name: "comment", Value: c.Author + ": " + c.Text})
	}
	return out, nil
}

func (s *Service) soapAddComment(params []soap.Param) ([]soap.Param, *soap.Fault) {
	id := soapArg(params, "photo_id")
	text := soapArg(params, "comment_text")
	if text == "" {
		return nil, &soap.Fault{Code: "Client", Message: "comment_text required"}
	}
	c, err := s.store.AddComment(id, "flickr-user", text)
	if err != nil {
		return nil, &soap.Fault{Code: "Client", Message: err.Error()}
	}
	return []soap.Param{{Name: "comment_id", Value: c.ID}}, nil
}
