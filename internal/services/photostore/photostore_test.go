package photostore

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestSeededCorpus(t *testing.T) {
	s := New()
	if s.Len() != 10 {
		t.Errorf("corpus size = %d", s.Len())
	}
	p, ok := s.Get("photo-0001")
	if !ok || p.Title != "tall tree at dawn" || p.Owner != "alice" {
		t.Errorf("photo-0001 = %+v, %v", p, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("phantom photo")
	}
	// Deterministic across instances.
	s2 := New()
	a := s.Search("tree", 0)
	b := s2.Search("tree", 0)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic corpus: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("order differs at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
}

func TestSearch(t *testing.T) {
	s := New()
	trees := s.Search("tree", 0)
	if len(trees) != 5 {
		t.Errorf("tree results = %d, want 5", len(trees))
	}
	for _, p := range trees {
		lower := strings.ToLower(p.Title + " " + strings.Join(p.Tags, " "))
		if !strings.Contains(lower, "tree") {
			t.Errorf("non-matching result %+v", p)
		}
	}
	if got := s.Search("tree", 3); len(got) != 3 {
		t.Errorf("limited results = %d", len(got))
	}
	if got := s.Search("TREE", 0); len(got) != len(trees) {
		t.Error("search not case-insensitive")
	}
	if got := s.Search("zebra", 0); len(got) != 0 {
		t.Errorf("zebra results = %d", len(got))
	}
	if got := s.Search("", 2); len(got) != 2 {
		t.Errorf("empty query with limit = %d", len(got))
	}
}

func TestSearchReturnsCopies(t *testing.T) {
	s := New()
	got := s.Search("tree", 1)
	got[0].Tags[0] = "mutated"
	again := s.Search("tree", 1)
	if again[0].Tags[0] == "mutated" {
		t.Error("Search leaks internal tag slices")
	}
}

func TestComments(t *testing.T) {
	s := New()
	cs, err := s.Comments("photo-0001")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Author != "bob" {
		t.Errorf("seed comments = %+v", cs)
	}
	if _, err := s.Comments("nope"); !errors.Is(err, ErrNoSuchPhoto) {
		t.Errorf("err = %v", err)
	}
	c, err := s.AddComment("photo-0003", "dave", "nice path")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == "" || c.PhotoID != "photo-0003" {
		t.Errorf("added = %+v", c)
	}
	cs, _ = s.Comments("photo-0003")
	if len(cs) != 1 || cs[0].Text != "nice path" {
		t.Errorf("comments after add = %+v", cs)
	}
	if _, err := s.AddComment("nope", "x", "y"); !errors.Is(err, ErrNoSuchPhoto) {
		t.Errorf("add to phantom err = %v", err)
	}
}

func TestCommentIDsUnique(t *testing.T) {
	s := New()
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		c, err := s.AddComment("photo-0004", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate id %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Search("tree", 0)
				if _, err := s.AddComment("photo-0001", "c", "t"); err != nil {
					t.Errorf("add: %v", err)
					return
				}
				if _, err := s.Comments("photo-0001"); err != nil {
					t.Errorf("comments: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	cs, _ := s.Comments("photo-0001")
	if len(cs) != 2+8*50 {
		t.Errorf("comment count = %d", len(cs))
	}
}

func TestTags(t *testing.T) {
	s := New()
	tags := s.Tags()
	if len(tags) == 0 {
		t.Fatal("no tags")
	}
	for i := 1; i < len(tags); i++ {
		if tags[i-1] >= tags[i] {
			t.Fatalf("tags not sorted/unique at %d: %v", i, tags)
		}
	}
	found := false
	for _, tag := range tags {
		if tag == "tree" {
			found = true
		}
	}
	if !found {
		t.Error("tree tag missing")
	}
}

func TestGenerate(t *testing.T) {
	s := Generate(100)
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
	trees := s.Search("tree", 0)
	if len(trees) != 20 {
		t.Errorf("tree hits = %d, want 20", len(trees))
	}
	// Deterministic.
	s2 := Generate(100)
	a, b := s.Search("cat", 3), s2.Search("cat", 3)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, p := range s.Search("", 0) {
		if seen[p.ID] {
			t.Fatalf("duplicate id %s", p.ID)
		}
		seen[p.ID] = true
	}
	if _, err := s.AddComment("photo-000001", "x", "y"); err != nil {
		t.Errorf("generated photos must accept comments: %v", err)
	}
}
