// Package photostore is the deterministic synthetic photo/comment dataset
// behind the simulated Flickr and Picasa services. Because the live web
// APIs the paper tested against are unavailable (and non-deterministic),
// both services share one corpus: end-to-end assertions can then check
// that a Flickr client talking *through the mediator* to Picasa sees the
// same photos a native Picasa client sees.
package photostore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Photo is one stored photograph.
type Photo struct {
	// ID is the photo identifier.
	ID string
	// Title is the display title.
	Title string
	// Owner is the uploader.
	Owner string
	// URL locates the JPEG.
	URL string
	// Tags are searchable keywords.
	Tags []string
}

// Comment is one photo comment.
type Comment struct {
	// ID is the comment identifier.
	ID string
	// PhotoID is the photo commented on.
	PhotoID string
	// Author wrote the comment.
	Author string
	// Text is the comment body.
	Text string
}

// ErrNoSuchPhoto is returned for unknown photo ids.
var ErrNoSuchPhoto = errors.New("photostore: no such photo")

// Store is a concurrency-safe photo/comment store.
type Store struct {
	mu       sync.Mutex
	photos   []Photo
	comments map[string][]Comment
	nextCID  int
}

// New returns a store seeded with the deterministic corpus.
func New() *Store {
	s := &Store{comments: make(map[string][]Comment), nextCID: 1}
	subjects := []struct {
		title string
		tags  []string
	}{
		{"tall tree at dawn", []string{"tree", "nature", "dawn"}},
		{"oak tree in summer", []string{"tree", "oak", "summer"}},
		{"pine forest path", []string{"tree", "forest", "path"}},
		{"mountain lake", []string{"mountain", "lake", "water"}},
		{"city skyline at night", []string{"city", "night", "skyline"}},
		{"sleeping cat", []string{"cat", "pet", "indoor"}},
		{"cat chasing leaves", []string{"cat", "tree", "autumn"}},
		{"desert dunes", []string{"desert", "sand", "dunes"}},
		{"harbour boats", []string{"sea", "boat", "harbour"}},
		{"winter birch grove", []string{"tree", "winter", "snow"}},
	}
	owners := []string{"alice", "bob", "carol"}
	for i, sub := range subjects {
		id := fmt.Sprintf("photo-%04d", i+1)
		s.photos = append(s.photos, Photo{
			ID:    id,
			Title: sub.title,
			Owner: owners[i%len(owners)],
			URL:   fmt.Sprintf("http://photos.example/%s.jpg", id),
			Tags:  sub.tags,
		})
	}
	// Seed comments on the tree photos so getList has content.
	s.mustAdd("photo-0001", "bob", "lovely light")
	s.mustAdd("photo-0001", "carol", "where is this?")
	s.mustAdd("photo-0002", "alice", "majestic oak")
	return s
}

func (s *Store) mustAdd(photoID, author, text string) {
	if _, err := s.AddComment(photoID, author, text); err != nil {
		panic(err)
	}
}

// Search returns photos whose title or tags contain the query keyword
// (case-insensitive), capped at limit when limit > 0. Results are in
// stable corpus order.
func (s *Store) Search(query string, limit int) []Photo {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := strings.ToLower(strings.TrimSpace(query))
	var out []Photo
	for _, p := range s.photos {
		if q != "" && !matches(p, q) {
			continue
		}
		out = append(out, clonePhoto(p))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

func matches(p Photo, q string) bool {
	if strings.Contains(strings.ToLower(p.Title), q) {
		return true
	}
	for _, t := range p.Tags {
		if strings.Contains(strings.ToLower(t), q) {
			return true
		}
	}
	return false
}

func clonePhoto(p Photo) Photo {
	cp := p
	cp.Tags = append([]string(nil), p.Tags...)
	return cp
}

// Get returns the photo with the given id.
func (s *Store) Get(id string) (Photo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.photos {
		if p.ID == id {
			return clonePhoto(p), true
		}
	}
	return Photo{}, false
}

// Comments returns a photo's comments in insertion order.
func (s *Store) Comments(photoID string) ([]Comment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasPhoto(photoID) {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPhoto, photoID)
	}
	return append([]Comment(nil), s.comments[photoID]...), nil
}

// AddComment appends a comment and returns it with its assigned id.
func (s *Store) AddComment(photoID, author, text string) (Comment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasPhoto(photoID) {
		return Comment{}, fmt.Errorf("%w: %q", ErrNoSuchPhoto, photoID)
	}
	c := Comment{
		ID:      fmt.Sprintf("comment-%04d", s.nextCID),
		PhotoID: photoID,
		Author:  author,
		Text:    text,
	}
	s.nextCID++
	s.comments[photoID] = append(s.comments[photoID], c)
	return c, nil
}

func (s *Store) hasPhoto(id string) bool {
	for _, p := range s.photos {
		if p.ID == id {
			return true
		}
	}
	return false
}

// Generate returns a store with a deterministic synthetic corpus of n
// photos (the workload generator for the scaling sweeps): subjects cycle
// through a fixed set of themes, so keyword searches return ~n/5 hits.
func Generate(n int) *Store {
	s := &Store{comments: make(map[string][]Comment), nextCID: 1}
	themes := []struct {
		title string
		tags  []string
	}{
		{"tree study %d", []string{"tree", "nature"}},
		{"city scene %d", []string{"city", "road"}},
		{"cat portrait %d", []string{"cat", "pet"}},
		{"mountain view %d", []string{"mountain", "outdoors"}},
		{"harbour light %d", []string{"sea", "harbour"}},
	}
	owners := []string{"alice", "bob", "carol", "dave"}
	for i := 0; i < n; i++ {
		th := themes[i%len(themes)]
		id := fmt.Sprintf("photo-%06d", i+1)
		s.photos = append(s.photos, Photo{
			ID:    id,
			Title: fmt.Sprintf(th.title, i+1),
			Owner: owners[i%len(owners)],
			URL:   fmt.Sprintf("http://photos.example/%s.jpg", id),
			Tags:  append([]string(nil), th.tags...),
		})
	}
	return s
}

// Len reports the corpus size.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.photos)
}

// Tags returns the distinct tags in the corpus, sorted (useful for
// workload generators).
func (s *Store) Tags() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[string]bool{}
	for _, p := range s.photos {
		for _, t := range p.Tags {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
