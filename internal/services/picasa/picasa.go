// Package picasa simulates the Picasa Web Albums service of the case
// study: the GData-style REST API of Fig. 1 (keyword search returning an
// Atom feed whose entries carry the photo URL directly, comment listing
// via ?kind=comment, and comment creation by POSTing an <entry>), backed
// by a photostore corpus.
package picasa

import (
	"strconv"
	"strings"
	"time"

	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/rest"
	"starlink/internal/services/photostore"
)

// Config names the API's query parameters. The zero value is the v1 API
// of Fig. 1 (q / max-results); the evolution experiment (EXPERIMENTS.md
// E9) uses a v2 with renamed parameters, which Starlink absorbs by
// editing one line of the route model.
type Config struct {
	// SearchParam is the keyword query parameter (default "q").
	SearchParam string
	// LimitParam is the result-limit parameter (default "max-results").
	LimitParam string
	// ProcessingDelay is slept before answering each request. The
	// benchmark harness uses it to stand in for a remote service's
	// processing and network time, which the in-process store would
	// otherwise hide.
	ProcessingDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.SearchParam == "" {
		c.SearchParam = "q"
	}
	if c.LimitParam == "" {
		c.LimitParam = "max-results"
	}
	return c
}

// Service serves the Picasa REST API.
type Service struct {
	store *photostore.Store
	cfg   Config
	http  *httpwire.Server
}

// New starts the v1 service on an ephemeral port over the given store.
func New(store *photostore.Store) (*Service, error) {
	return NewWithConfig(store, Config{})
}

// NewWithConfig starts the service with evolved parameter names.
func NewWithConfig(store *photostore.Store, cfg Config) (*Service, error) {
	s := &Service{store: store, cfg: cfg.withDefaults()}
	hs, err := httpwire.Serve("127.0.0.1:0", s.handle)
	if err != nil {
		return nil, err
	}
	s.http = hs
	return s, nil
}

// Addr returns the service address ("host:port").
func (s *Service) Addr() string { return s.http.Addr() }

// Close stops the server.
func (s *Service) Close() error { return s.http.Close() }

func (s *Service) handle(req *httpwire.Request) *httpwire.Response {
	if s.cfg.ProcessingDelay > 0 {
		time.Sleep(s.cfg.ProcessingDelay)
	}
	switch {
	case req.Method == "GET" && req.Path() == rest.BasePath+"/all":
		return s.search(req)
	case req.Method == "GET" && strings.HasPrefix(req.Path(), rest.BasePath+"/photoid/"):
		return s.comments(req)
	case req.Method == "POST" && strings.HasPrefix(req.Path(), rest.BasePath+"/photoid/"):
		return s.addComment(req)
	default:
		return &httpwire.Response{Status: 404, Body: []byte("unknown resource")}
	}
}

func (s *Service) search(req *httpwire.Request) *httpwire.Response {
	q := req.QueryValue(s.cfg.SearchParam)
	if q == "" {
		return &httpwire.Response{Status: 400, Body: []byte(s.cfg.SearchParam + " parameter required")}
	}
	limit, _ := strconv.Atoi(req.QueryValue(s.cfg.LimitParam))
	photos := s.store.Search(q, limit)
	feed := rest.Feed{Title: "Search Results"}
	for _, p := range photos {
		feed.Entries = append(feed.Entries, rest.Entry{
			ID:          p.ID,
			Title:       p.Title,
			Author:      p.Owner,
			ContentType: "image/jpeg",
			ContentSrc:  p.URL,
		})
	}
	return feedResponse(feed, 200)
}

func (s *Service) comments(req *httpwire.Request) *httpwire.Response {
	id, ok := rest.ParsePhotoPath(req.Path())
	if !ok {
		return &httpwire.Response{Status: 404, Body: []byte("bad photo path")}
	}
	if req.QueryValue("kind") != "comment" {
		return &httpwire.Response{Status: 400, Body: []byte("kind=comment required")}
	}
	comments, err := s.store.Comments(id)
	if err != nil {
		return &httpwire.Response{Status: 404, Body: []byte(err.Error())}
	}
	feed := rest.Feed{Title: "Comments on " + id}
	for _, c := range comments {
		feed.Entries = append(feed.Entries, rest.Entry{
			ID:      c.ID,
			Title:   "comment",
			Author:  c.Author,
			Summary: c.Text,
		})
	}
	return feedResponse(feed, 200)
}

func (s *Service) addComment(req *httpwire.Request) *httpwire.Response {
	id, ok := rest.ParsePhotoPath(req.Path())
	if !ok {
		return &httpwire.Response{Status: 404, Body: []byte("bad photo path")}
	}
	entry, err := rest.ParseEntry(req.Body)
	if err != nil {
		return &httpwire.Response{Status: 400, Body: []byte(err.Error())}
	}
	text := entry.Summary
	if text == "" {
		return &httpwire.Response{Status: 400, Body: []byte("empty comment")}
	}
	author := entry.Author
	if author == "" {
		author = "picasa-user"
	}
	c, err := s.store.AddComment(id, author, text)
	if err != nil {
		return &httpwire.Response{Status: 404, Body: []byte(err.Error())}
	}
	body, err := rest.MarshalEntry(rest.Entry{
		ID: c.ID, Title: "comment", Author: c.Author, Summary: c.Text,
	})
	if err != nil {
		return &httpwire.Response{Status: 500, Body: []byte(err.Error())}
	}
	return &httpwire.Response{
		Status:  201,
		Headers: map[string]string{"Content-Type": "application/atom+xml"},
		Body:    body,
	}
}

func feedResponse(feed rest.Feed, status int) *httpwire.Response {
	body, err := rest.MarshalFeed(feed)
	if err != nil {
		return &httpwire.Response{Status: 500, Body: []byte(err.Error())}
	}
	return &httpwire.Response{
		Status:  status,
		Headers: map[string]string{"Content-Type": "application/atom+xml"},
		Body:    body,
	}
}
