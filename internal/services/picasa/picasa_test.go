package picasa

import (
	"strings"
	"testing"

	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/rest"
	"starlink/internal/services/photostore"
)

func startService(t *testing.T) (*Service, *photostore.Store) {
	t.Helper()
	store := photostore.New()
	svc, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, store
}

func TestSearchFeed(t *testing.T) {
	svc, store := startService(t)
	c := rest.NewClient(svc.Addr())
	defer c.Close()

	feed, err := c.Search("tree", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Entries) != 3 {
		t.Fatalf("entries = %d", len(feed.Entries))
	}
	// The Picasa feed delivers the photo URL directly in the search result
	// (the behaviour difference of Section 2.1).
	want, _ := store.Get(feed.Entries[0].ID)
	if feed.Entries[0].ContentSrc != want.URL {
		t.Errorf("content src = %q, want %q", feed.Entries[0].ContentSrc, want.URL)
	}
	if feed.Entries[0].ContentType != "image/jpeg" {
		t.Errorf("content type = %q", feed.Entries[0].ContentType)
	}
}

func TestCommentsAndAdd(t *testing.T) {
	svc, _ := startService(t)
	c := rest.NewClient(svc.Addr())
	defer c.Close()

	before, err := c.Comments("photo-0001")
	if err != nil {
		t.Fatal(err)
	}
	added, err := c.AddComment("photo-0001", "wonderful")
	if err != nil {
		t.Fatal(err)
	}
	if added.ID == "" || added.Summary != "wonderful" {
		t.Errorf("added = %+v", added)
	}
	after, err := c.Comments("photo-0001")
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != before.Len()+1 {
		t.Errorf("comments %d -> %d", before.Len(), after.Len())
	}
	last := after.Entries[len(after.Entries)-1]
	if last.Summary != "wonderful" || last.Author != "picasa-user" {
		t.Errorf("last comment = %+v", last)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc, _ := startService(t)
	hc := &httpwire.Client{Addr: svc.Addr()}
	defer hc.Close()

	cases := []struct {
		method, target string
		body           string
		wantStatus     int
	}{
		{"GET", rest.BasePath + "/all", "", 400},                         // missing q
		{"GET", rest.BasePath + "/photoid/photo-0001", "", 400},          // missing kind
		{"GET", rest.BasePath + "/photoid/ghost?kind=comment", "", 404},  // unknown photo
		{"GET", "/somewhere/else", "", 404},                              // unknown route
		{"POST", rest.BasePath + "/photoid/photo-0001", "not xml", 400},  // bad entry
		{"POST", rest.BasePath + "/photoid/photo-0001", "<entry/>", 400}, // empty comment
		{"POST", rest.BasePath + "/photoid/ghost", "<entry><summary>x</summary></entry>", 404},
		{"DELETE", rest.BasePath + "/photoid/photo-0001", "", 404}, // unsupported verb
	}
	for _, tt := range cases {
		resp, err := hc.Do(&httpwire.Request{
			Method: tt.method, Target: tt.target, Body: []byte(tt.body),
		})
		if err != nil {
			t.Fatalf("%s %s: %v", tt.method, tt.target, err)
		}
		if resp.Status != tt.wantStatus {
			t.Errorf("%s %s = %d, want %d", tt.method, tt.target, resp.Status, tt.wantStatus)
		}
	}
}

func TestFeedLen(t *testing.T) {
	svc, _ := startService(t)
	c := rest.NewClient(svc.Addr())
	defer c.Close()
	feed, err := c.Search("tree", 0)
	if err != nil {
		t.Fatal(err)
	}
	if feed.Len() != 5 {
		t.Errorf("Len = %d", feed.Len())
	}
	if !strings.Contains(feed.Title, "Search") {
		t.Errorf("title = %q", feed.Title)
	}
}
