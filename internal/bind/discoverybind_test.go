package bind

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/automata"
	"starlink/internal/message"
)

func TestSSDPBinderRoundTrips(t *testing.T) {
	b := &SSDPBinder{}
	abs := message.New(DiscoverySearch,
		message.NewPrimitive("st", message.TypeString, "urn:x:Printer:1"),
		message.NewPrimitive("mx", message.TypeInt64, 2),
	)
	packet, err := b.BuildRequest(DiscoverySearch, abs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(packet), "M-SEARCH * HTTP/1.1") {
		t.Errorf("packet = %q", packet[:20])
	}
	action, back, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != DiscoverySearch {
		t.Errorf("action = %q", action)
	}
	if v, _ := back.GetString("st"); v != "urn:x:Printer:1" {
		t.Errorf("st = %q", v)
	}
	if v, _ := back.GetInt("mx"); v != 2 {
		t.Errorf("mx = %d", v)
	}

	reply := message.New(DiscoverySearch+".reply",
		message.NewPrimitive("st", message.TypeString, "urn:x:Printer:1"),
		message.NewPrimitive("usn", message.TypeString, "uuid:1"),
		message.NewPrimitive("location", message.TypeString, "http://p/desc.xml"),
	)
	rp, err := b.BuildReply(DiscoverySearch, reply)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := b.ParseReply(DiscoverySearch, rp)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rback.GetString("location"); v != "http://p/desc.xml" {
		t.Errorf("location = %q", v)
	}
}

func TestSSDPBinderErrors(t *testing.T) {
	b := &SSDPBinder{}
	if _, err := b.BuildRequest("wrong.action", message.New("x")); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := b.ParseRequest([]byte("junk")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
	if _, err := b.ParseReply(DiscoverySearch, []byte("junk")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
	// Missing mx defaults to 1.
	abs := message.New(DiscoverySearch, message.NewPrimitive("st", message.TypeString, "urn:y"))
	packet, err := b.BuildRequest(DiscoverySearch, abs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(packet), "MX: 1") {
		t.Errorf("default MX missing: %q", packet)
	}
}

func TestSLPBinderRoundTrips(t *testing.T) {
	b, err := NewSLPBinder()
	if err != nil {
		t.Fatal(err)
	}
	abs := message.New(DiscoverySearch,
		message.NewPrimitive("servicetype", message.TypeString, "service:printer:lpr"),
	)
	packet, err := b.BuildRequest(DiscoverySearch, abs)
	if err != nil {
		t.Fatal(err)
	}
	action, back, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != DiscoverySearch {
		t.Errorf("action = %q", action)
	}
	if v, _ := back.GetString("servicetype"); v != "service:printer:lpr" {
		t.Errorf("servicetype = %q", v)
	}
	if v, _ := back.GetString("scope"); v != "DEFAULT" {
		t.Errorf("default scope = %q", v)
	}
	if back.Field("_slp_xid") == nil {
		t.Error("xid not stashed")
	}

	reply := message.New(DiscoverySearch+".reply",
		message.NewStruct("urlentry",
			message.NewPrimitive("url", message.TypeString, "service:printer:lpr://a"),
			message.NewPrimitive("lifetime", message.TypeInt64, 99),
		),
		back.Field("_slp_xid"),
	)
	rp, err := b.BuildReply(DiscoverySearch, reply)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := b.ParseReply(DiscoverySearch, rp)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rback.GetString("urlentry.url"); v != "service:printer:lpr://a" {
		t.Errorf("url = %q", v)
	}
	if v, _ := rback.GetInt("urlentry.lifetime"); v != 99 {
		t.Errorf("lifetime = %d", v)
	}
}

func TestSLPBinderErrors(t *testing.T) {
	b, err := NewSLPBinder()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BuildRequest("zap", message.New("x")); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := b.ParseRequest([]byte("junk")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
	if _, err := b.ParseReply(DiscoverySearch, []byte("junk")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
	// A request packet on the reply path is rejected.
	req, _ := b.BuildRequest(DiscoverySearch, message.New(DiscoverySearch,
		message.NewPrimitive("servicetype", message.TypeString, "x")))
	if _, err := b.ParseReply(DiscoverySearch, req); !errors.Is(err, ErrBadMessage) {
		t.Errorf("request-as-reply err = %v", err)
	}
	// Error-code replies are rejected.
	errReply := message.New(DiscoverySearch + ".reply")
	errReply.Add(message.NewPrimitive("_slp_xid", message.TypeUint64, 1))
	packet, err := b.BuildReply(DiscoverySearch, errReply)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ParseReply(DiscoverySearch, packet); err != nil {
		t.Fatalf("empty reply should parse (code 0): %v", err)
	}
}

func TestDatagramFramer(t *testing.T) {
	f := datagramFramer{}
	if _, err := f.ReadMessage(nil); err == nil {
		t.Error("stream read accepted")
	}
	var sb strings.Builder
	if err := f.WriteMessage(&sb, []byte("x")); err != nil || sb.String() != "x" {
		t.Errorf("write = %q, %v", sb.String(), err)
	}
}

func TestJSONRPCBinderRequestRoundTrip(t *testing.T) {
	b := &JSONRPCBinder{Path: "/jsonrpc", Defs: map[string]automata.MsgDef{
		"op": {Name: "op", Fields: []string{"alpha", "beta"}},
	}}
	abs := message.New("op",
		message.NewPrimitive("alpha", message.TypeString, "a"),
		message.NewPrimitive("beta", message.TypeInt64, 2),
	)
	packet, err := b.BuildRequest("op", abs)
	if err != nil {
		t.Fatal(err)
	}
	action, back, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != "op" {
		t.Errorf("action = %q", action)
	}
	if v, _ := back.GetString("alpha"); v != "a" {
		t.Errorf("alpha = %q", v)
	}
	if v, _ := back.GetInt("beta"); v != 2 {
		t.Errorf("beta = %d", v)
	}
	if back.Field("_jsonrpc_id") == nil {
		t.Error("id not stashed")
	}
}

func TestJSONRPCBinderPositionalParams(t *testing.T) {
	b := &JSONRPCBinder{Path: "/j", Defs: map[string]automata.MsgDef{
		"add": {Name: "add", Fields: []string{"x", "y"}},
	}}
	raw := `{"method":"add","params":[20,22.5,true],"id":3}`
	packet := []byte("POST /j HTTP/1.1\r\nContent-Length: " + itoa(len(raw)) + "\r\n\r\n" + raw)
	action, abs, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != "add" {
		t.Errorf("action = %q", action)
	}
	if v, _ := abs.GetInt("x"); v != 20 {
		t.Errorf("x = %d", v)
	}
	if v, _ := abs.Get("y"); v != 22.5 {
		t.Errorf("y = %v", v)
	}
	if v, _ := abs.Get("param3"); v != true {
		t.Errorf("param3 = %v", v)
	}
}

func TestJSONRPCBinderReplyRoundTrips(t *testing.T) {
	b := &JSONRPCBinder{Path: "/j"}
	reply := message.New("op.reply",
		message.NewArray("photos",
			message.NewStruct("item", message.NewPrimitive("id", message.TypeString, "p1")),
		),
		message.NewPrimitive("total", message.TypeInt64, 1),
		message.NewPrimitive("_jsonrpc_id", message.TypeUint64, 5),
	)
	packet, err := b.BuildReply("op", reply)
	if err != nil {
		t.Fatal(err)
	}
	back, err := b.ParseReply("op", packet)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.GetString("photos.item[0].id"); v != "p1" {
		t.Errorf("photos = %v", back)
	}
	if v, _ := back.GetInt("total"); v != 1 {
		t.Errorf("total = %d", v)
	}

	// Scalar result convention.
	scalar := message.New("op.reply",
		message.NewPrimitive("result", message.TypeInt64, 42),
		message.NewPrimitive("_jsonrpc_id", message.TypeUint64, 6),
	)
	sp, err := b.BuildReply("op", scalar)
	if err != nil {
		t.Fatal(err)
	}
	sback, err := b.ParseReply("op", sp)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sback.GetInt("result"); v != 42 {
		t.Errorf("result = %d", v)
	}
}

func TestJSONRPCBinderErrors(t *testing.T) {
	b := &JSONRPCBinder{Path: "/j"}
	if _, _, err := b.ParseRequest([]byte("junk")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
	if _, err := b.ParseReply("op", []byte("junk")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
}
