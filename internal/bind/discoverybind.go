package bind

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"

	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/slp"
	"starlink/internal/protocol/ssdp"
)

// DiscoverySearch is the abstract action label shared by the discovery
// binders: an SSDP M-SEARCH and an SLP ServiceRequest both bind to it.
const DiscoverySearch = "discovery.search"

// datagramFramer satisfies network.Framer for message-per-datagram
// protocols; the UDP transport ignores framing, so these methods are only
// used on the (unsupported) stream path.
type datagramFramer struct{}

var _ network.Framer = datagramFramer{}

// ReadMessage implements network.Framer (not used over UDP).
func (datagramFramer) ReadMessage(*bufio.Reader) ([]byte, error) {
	return nil, fmt.Errorf("bind: datagram protocol over a stream transport")
}

// WriteMessage implements network.Framer.
func (datagramFramer) WriteMessage(w io.Writer, data []byte) error {
	_, err := w.Write(data)
	return err
}

// SSDPBinder binds the discovery.search action to SSDP M-SEARCH /
// 200 OK messages. Abstract request fields: st, mx. Abstract reply
// fields: st, usn, location.
type SSDPBinder struct{}

var _ Binder = (*SSDPBinder)(nil)

// Framer implements Binder.
func (b *SSDPBinder) Framer() network.Framer { return datagramFramer{} }

// ParseRequest implements Binder.
func (b *SSDPBinder) ParseRequest(packet []byte) (string, *message.Message, error) {
	s, err := ssdp.ParseSearch(packet)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	abs := message.New(DiscoverySearch,
		message.NewPrimitive("st", message.TypeString, s.ST),
		message.NewPrimitive("mx", message.TypeInt64, int64(s.MX)),
	)
	return DiscoverySearch, abs, nil
}

// BuildRequest implements Binder.
func (b *SSDPBinder) BuildRequest(action string, abs *message.Message) ([]byte, error) {
	if action != DiscoverySearch {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAction, action)
	}
	st, _ := abs.GetString("st")
	mx, err := abs.GetInt("mx")
	if err != nil {
		mx = 1
	}
	return ssdp.SearchRequest{ST: st, MX: int(mx)}.Marshal(), nil
}

// ParseReply implements Binder.
func (b *SSDPBinder) ParseReply(action string, packet []byte) (*message.Message, error) {
	resp, err := ssdp.ParseResponse(packet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return message.New(action+".reply",
		message.NewPrimitive("st", message.TypeString, resp.ST),
		message.NewPrimitive("usn", message.TypeString, resp.USN),
		message.NewPrimitive("location", message.TypeString, resp.Location),
	), nil
}

// BuildReply implements Binder.
func (b *SSDPBinder) BuildReply(action string, abs *message.Message) ([]byte, error) {
	get := func(label string) string {
		if f := abs.Field(label); f != nil {
			return f.ValueString()
		}
		return ""
	}
	return ssdp.SearchResponse{
		ST:       get("st"),
		USN:      get("usn"),
		Location: get("location"),
	}.Marshal(), nil
}

// SLPBinder binds discovery.search to SLP ServiceRequest/ServiceReply
// through the binary MDL codec. Abstract request fields: servicetype,
// scope. Abstract reply fields: repeated urlentry structs {url,
// lifetime}.
type SLPBinder struct {
	codec   mdl.Codec
	nextXID atomic.Uint64
}

var _ Binder = (*SLPBinder)(nil)

// NewSLPBinder compiles the SLP MDL document.
func NewSLPBinder() (*SLPBinder, error) {
	codec, err := slp.NewCodec()
	if err != nil {
		return nil, err
	}
	return &SLPBinder{codec: codec}, nil
}

// Framer implements Binder.
func (b *SLPBinder) Framer() network.Framer { return datagramFramer{} }

// BuildRequest implements Binder.
func (b *SLPBinder) BuildRequest(action string, abs *message.Message) ([]byte, error) {
	if action != DiscoverySearch {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAction, action)
	}
	st, _ := abs.GetString("servicetype")
	scope, _ := abs.GetString("scope")
	if scope == "" {
		scope = "DEFAULT"
	}
	return b.codec.Compose(slp.NewRequest(b.nextXID.Add(1), st, scope))
}

// ParseReply implements Binder.
func (b *SLPBinder) ParseReply(action string, packet []byte) (*message.Message, error) {
	reply, err := b.codec.Parse(packet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if reply.Name != "ServiceReply" {
		return nil, fmt.Errorf("%w: got %s", ErrBadMessage, reply.Name)
	}
	if code, _ := reply.GetInt("ErrorCode"); code != 0 {
		return nil, fmt.Errorf("%w: SLP error code %d", ErrBadMessage, code)
	}
	abs := message.New(action + ".reply")
	for _, e := range slp.EntriesOf(reply) {
		abs.Add(message.NewStruct("urlentry",
			message.NewPrimitive("url", message.TypeString, e.URL),
			message.NewPrimitive("lifetime", message.TypeInt64, int64(e.Lifetime)),
		))
	}
	return abs, nil
}

// ParseRequest implements Binder (for SLP-facing server roles).
func (b *SLPBinder) ParseRequest(packet []byte) (string, *message.Message, error) {
	req, err := b.codec.Parse(packet)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if req.Name != "ServiceRequest" {
		return "", nil, fmt.Errorf("%w: got %s", ErrBadMessage, req.Name)
	}
	st, _ := req.GetString("ServiceType")
	scope, _ := req.GetString("Scope")
	xid, _ := req.GetInt("XID")
	abs := message.New(DiscoverySearch,
		message.NewPrimitive("servicetype", message.TypeString, st),
		message.NewPrimitive("scope", message.TypeString, scope),
		message.NewPrimitive("_slp_xid", message.TypeUint64, uint64(xid)),
	)
	return DiscoverySearch, abs, nil
}

// BuildReply implements Binder (for SLP-facing server roles).
func (b *SLPBinder) BuildReply(action string, abs *message.Message) ([]byte, error) {
	var xid uint64
	if f := abs.Field("_slp_xid"); f != nil {
		if v, ok := f.Value.(uint64); ok {
			xid = v
		}
	}
	var entries []slp.URLEntry
	for _, f := range abs.Fields {
		if f.Label != "urlentry" {
			continue
		}
		e := slp.URLEntry{Lifetime: 1800}
		if c := f.Child("url"); c != nil {
			e.URL = c.ValueString()
		}
		if c := f.Child("lifetime"); c != nil {
			if n, ok := c.Value.(int64); ok {
				e.Lifetime = uint16(n)
			}
		}
		entries = append(entries, e)
	}
	return b.codec.Compose(slp.NewReply(xid, 0, entries))
}
