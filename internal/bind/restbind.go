package bind

import (
	"fmt"
	"net/url"
	"strings"

	"starlink/internal/mdl"
	"starlink/internal/mdl/textenc"
	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/rest"
)

// HTTPMDL is the text-MDL document describing HTTP requests and
// responses; the REST binder interprets it through the text engine, so
// the DSL-generated parser/composer sits in the mediation hot path (the
// paper's Fig. 9 message flow). It is re-exported from textenc, which
// owns the canonical definition.
const HTTPMDL = textenc.HTTPMDL

// Route is one entry of the REST binding table: how an abstract action
// maps onto an HTTP resource (the GET/POST syntax column of Fig. 1).
type Route struct {
	// Action is the abstract action label.
	Action string
	// Method is the HTTP verb.
	Method string
	// PathTemplate is the resource path, with {field} placeholders filled
	// from abstract request fields.
	PathTemplate string
	// Query maps query-parameter names to abstract field labels.
	Query map[string]string
	// BodyField names the abstract field marshalled as an Atom <entry>
	// request body ("" for none).
	BodyField string
	// ReplyKind is "feed" or "entry".
	ReplyKind string
}

// ParseRoutes reads a route table document, one route per line:
//
//	# comments allowed
//	route <action> <METHOD> <path-template> [q=field ...] [body=field] -> feed|entry
func ParseRoutes(doc string) ([]Route, error) {
	var out []Route
	for lineNo, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		head, kind, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("bind: routes line %d: missing \"->\"", lineNo+1)
		}
		fields := strings.Fields(head)
		if len(fields) < 4 || fields[0] != "route" {
			return nil, fmt.Errorf("bind: routes line %d: want \"route <action> <METHOD> <path>\"", lineNo+1)
		}
		r := Route{
			Action:       fields[1],
			Method:       fields[2],
			PathTemplate: fields[3],
			Query:        map[string]string{},
			ReplyKind:    strings.TrimSpace(kind),
		}
		if r.ReplyKind != "feed" && r.ReplyKind != "entry" {
			return nil, fmt.Errorf("bind: routes line %d: reply kind %q", lineNo+1, r.ReplyKind)
		}
		for _, kv := range fields[4:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("bind: routes line %d: bad mapping %q", lineNo+1, kv)
			}
			if k == "body" {
				r.BodyField = v
			} else {
				r.Query[k] = v
			}
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bind: route table is empty")
	}
	return out, nil
}

// RESTBinder binds abstract actions to a GData-style REST API through a
// route table and the HTTP text-MDL codec.
type RESTBinder struct {
	routes []Route
	codec  mdl.Codec
}

var _ Binder = (*RESTBinder)(nil)

// NewRESTBinder compiles the HTTP MDL and installs the route table.
func NewRESTBinder(routes []Route) (*RESTBinder, error) {
	spec, err := mdl.ParseString(HTTPMDL)
	if err != nil {
		return nil, fmt.Errorf("bind: parse HTTP MDL: %w", err)
	}
	codec, err := textenc.New(spec)
	if err != nil {
		return nil, fmt.Errorf("bind: compile HTTP MDL: %w", err)
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("bind: REST binder needs at least one route")
	}
	return &RESTBinder{routes: routes, codec: codec}, nil
}

// Framer implements Binder.
func (b *RESTBinder) Framer() network.Framer { return network.HTTPFramer{} }

func (b *RESTBinder) route(action string) (Route, error) {
	for _, r := range b.routes {
		if r.Action == action {
			return r, nil
		}
	}
	return Route{}, fmt.Errorf("%w: %q", ErrUnknownAction, action)
}

// BuildRequest implements Binder: fills the route's path template and
// query parameters from the abstract fields and composes the HTTP request
// through the text-MDL codec.
func (b *RESTBinder) BuildRequest(action string, abs *message.Message) ([]byte, error) {
	r, err := b.route(action)
	if err != nil {
		return nil, err
	}
	path, err := fillTemplate(r.PathTemplate, abs)
	if err != nil {
		return nil, fmt.Errorf("action %s: %w", action, err)
	}
	concrete := message.New("HTTPRequest",
		message.NewPrimitive("Method", message.TypeString, r.Method),
		message.NewPrimitive("Version", message.TypeString, "HTTP/1.1"),
		message.NewPrimitive("Path", message.TypeString, path),
		message.NewStruct("Headers",
			message.NewPrimitive("Accept", message.TypeString, "application/atom+xml"),
		),
	)
	q := message.NewStruct("Query")
	for _, qp := range sortedKeys(r.Query) {
		f := abs.Field(r.Query[qp])
		if f == nil {
			continue // optional parameter absent
		}
		q.Add(message.NewPrimitive(qp, message.TypeString, f.ValueString()))
	}
	concrete.Add(q)
	body := ""
	if r.BodyField != "" {
		f := abs.Field(r.BodyField)
		if f == nil {
			return nil, fmt.Errorf("%w: action %s: body field %q missing", ErrBadMessage, action, r.BodyField)
		}
		e := entryFromAbstract(f)
		data, err := rest.MarshalEntry(e)
		if err != nil {
			return nil, err
		}
		body = string(data)
	}
	concrete.Add(message.NewPrimitive("Body", message.TypeString, body))
	return b.codec.Compose(concrete)
}

// ParseReply implements Binder: decodes the HTTP response through the
// text-MDL codec and maps the Atom payload onto abstract fields.
func (b *RESTBinder) ParseReply(action string, packet []byte) (*message.Message, error) {
	r, err := b.route(action)
	if err != nil {
		return nil, err
	}
	concrete, err := b.codec.Parse(packet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	status, _ := concrete.GetString("Status")
	if status != "200" && status != "201" {
		return nil, fmt.Errorf("%w: action %s: HTTP status %s", ErrBadMessage, action, status)
	}
	body, _ := concrete.GetString("Body")
	abs := message.New(action + ".reply")
	switch r.ReplyKind {
	case "feed":
		feed, err := rest.ParseFeed([]byte(body))
		if err != nil {
			return nil, err
		}
		for _, e := range feed.Entries {
			abs.Add(abstractFromEntry(e))
		}
	default:
		e, err := rest.ParseEntry([]byte(body))
		if err != nil {
			return nil, err
		}
		abs.Add(abstractFromEntry(e))
	}
	return abs, nil
}

// ParseRequest implements Binder: matches the request against the route
// table (for mediators whose *client-facing* side is REST).
func (b *RESTBinder) ParseRequest(packet []byte) (string, *message.Message, error) {
	concrete, err := b.codec.Parse(packet)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	method, _ := concrete.GetString("Method")
	path, _ := concrete.GetString("Path")
	for _, r := range b.routes {
		vars, ok := matchTemplate(r.PathTemplate, path)
		if !ok || r.Method != method {
			continue
		}
		// Query mappings present in the request must match route fields.
		abs := message.New(r.Action)
		for k, v := range vars {
			abs.Add(message.NewPrimitive(k, message.TypeString, v))
		}
		if qf, err := concrete.Lookup("Query"); err == nil {
			for _, qp := range qf.Children {
				label, ok := r.Query[qp.Label]
				if !ok {
					label = qp.Label
				}
				abs.Add(message.NewPrimitive(label, message.TypeString, qp.ValueString()))
			}
		}
		if r.BodyField != "" {
			body, _ := concrete.GetString("Body")
			e, err := rest.ParseEntry([]byte(body))
			if err != nil {
				return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
			}
			ef := abstractFromEntry(e)
			ef.Label = r.BodyField
			abs.Add(ef)
		}
		return r.Action, abs, nil
	}
	return "", nil, fmt.Errorf("%w: %s %s matches no route", ErrBadMessage, method, path)
}

// BuildReply implements Binder: renders abstract entry fields as an Atom
// feed (or single entry) response.
func (b *RESTBinder) BuildReply(action string, abs *message.Message) ([]byte, error) {
	r, err := b.route(action)
	if err != nil {
		return nil, err
	}
	var body []byte
	status := "200"
	if r.ReplyKind == "feed" {
		feed := rest.Feed{Title: action}
		for _, f := range abs.Fields {
			if f.Label == "entry" {
				feed.Entries = append(feed.Entries, entryFromAbstract(f))
			}
		}
		body, err = rest.MarshalFeed(feed)
	} else {
		status = "201"
		var src *message.Field
		for _, f := range abs.Fields {
			if f.Label == "entry" {
				src = f
				break
			}
		}
		if src == nil {
			src = message.NewStruct("entry", abs.Fields...)
		}
		body, err = rest.MarshalEntry(entryFromAbstract(src))
	}
	if err != nil {
		return nil, err
	}
	concrete := message.New("HTTPResponse",
		message.NewPrimitive("Version", message.TypeString, "HTTP/1.1"),
		message.NewPrimitive("Status", message.TypeString, status),
		message.NewPrimitive("Reason", message.TypeString, "OK"),
		message.NewStruct("Headers",
			message.NewPrimitive("Content-Type", message.TypeString, "application/atom+xml"),
		),
		message.NewPrimitive("Body", message.TypeString, string(body)),
	)
	return b.codec.Compose(concrete)
}

// BuildErrorReply implements ErrorReplier with an HTTP 500.
func (b *RESTBinder) BuildErrorReply(action string, _ *message.Message, errMsg string) ([]byte, error) {
	concrete := message.New("HTTPResponse",
		message.NewPrimitive("Version", message.TypeString, "HTTP/1.1"),
		message.NewPrimitive("Status", message.TypeString, "500"),
		message.NewPrimitive("Reason", message.TypeString, "Mediation Failed"),
		message.NewStruct("Headers",
			message.NewPrimitive("Content-Type", message.TypeString, "text/plain"),
		),
		message.NewPrimitive("Body", message.TypeString, "mediation failed: "+errMsg),
	)
	return b.codec.Compose(concrete)
}

var _ ErrorReplier = (*RESTBinder)(nil)

// entryFromAbstract reads the abstract entry convention (id, title,
// summary, author, src, type children) into a rest.Entry.
func entryFromAbstract(f *message.Field) rest.Entry {
	get := func(label string) string {
		if c := f.Child(label); c != nil {
			return c.ValueString()
		}
		return ""
	}
	return rest.Entry{
		ID:          get("id"),
		Title:       get("title"),
		Summary:     get("summary"),
		Author:      get("author"),
		ContentSrc:  get("src"),
		ContentType: get("type"),
	}
}

// abstractFromEntry is the inverse mapping.
func abstractFromEntry(e rest.Entry) *message.Field {
	f := message.NewStruct("entry",
		message.NewPrimitive("id", message.TypeString, e.ID),
		message.NewPrimitive("title", message.TypeString, e.Title),
	)
	if e.Summary != "" {
		f.Add(message.NewPrimitive("summary", message.TypeString, e.Summary))
	}
	if e.Author != "" {
		f.Add(message.NewPrimitive("author", message.TypeString, e.Author))
	}
	if e.ContentSrc != "" {
		f.Add(message.NewPrimitive("src", message.TypeString, e.ContentSrc))
	}
	if e.ContentType != "" {
		f.Add(message.NewPrimitive("type", message.TypeString, e.ContentType))
	}
	return f
}

func fillTemplate(tmpl string, abs *message.Message) (string, error) {
	var b strings.Builder
	for {
		i := strings.IndexByte(tmpl, '{')
		if i < 0 {
			b.WriteString(tmpl)
			return b.String(), nil
		}
		j := strings.IndexByte(tmpl, '}')
		if j < i {
			return "", fmt.Errorf("malformed path template")
		}
		b.WriteString(tmpl[:i])
		name := tmpl[i+1 : j]
		f := abs.Field(name)
		if f == nil {
			return "", fmt.Errorf("%w: path variable %q missing", ErrBadMessage, name)
		}
		b.WriteString(url.PathEscape(f.ValueString()))
		tmpl = tmpl[j+1:]
	}
}

func matchTemplate(tmpl, path string) (map[string]string, bool) {
	tParts := strings.Split(tmpl, "/")
	pParts := strings.Split(path, "/")
	if len(tParts) != len(pParts) {
		return nil, false
	}
	vars := map[string]string{}
	for i := range tParts {
		t := tParts[i]
		if strings.HasPrefix(t, "{") && strings.HasSuffix(t, "}") {
			val, err := url.PathUnescape(pParts[i])
			if err != nil {
				return nil, false
			}
			vars[t[1:len(t)-1]] = val
			continue
		}
		if t != pParts[i] {
			return nil, false
		}
	}
	return vars, true
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
