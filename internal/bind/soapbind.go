package bind

import (
	"fmt"

	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/soap"
)

// SOAPBinder binds abstract actions to SOAP 1.1 RPC envelopes over HTTP.
//
// Binding rules (the Fig. 7 table for SOAP):
//
//	!Action    = SOAPRequest.MethodName  (the body element)
//	?Action    = SOAPReply.MethodName
//	ParameterN = SOAPRequest.ParameterArray.ParameterN (named body children)
//
// Abstract request fields map one-to-one onto named parameter elements;
// repeated reply parameters become repeated abstract fields.
type SOAPBinder struct {
	// Path is the HTTP endpoint path.
	Path string
}

var _ Binder = (*SOAPBinder)(nil)

// Framer implements Binder.
func (b *SOAPBinder) Framer() network.Framer { return network.HTTPFramer{} }

// ParseRequest implements Binder.
func (b *SOAPBinder) ParseRequest(packet []byte) (string, *message.Message, error) {
	req, err := httpwire.ParseRequest(packet)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	action, params, err := soap.ParseRequest(req.Body)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	abs := message.New(action)
	for _, p := range params {
		abs.Add(message.NewPrimitive(p.Name, message.TypeString, p.Value))
	}
	return action, abs, nil
}

// BuildRequest implements Binder.
func (b *SOAPBinder) BuildRequest(action string, abs *message.Message) ([]byte, error) {
	params := fieldsToParams(abs.Fields)
	body, err := soap.MarshalRequest(action, params)
	if err != nil {
		return nil, err
	}
	req := &httpwire.Request{
		Method: "POST",
		Target: b.Path,
		Headers: map[string]string{
			"Content-Type": "text/xml; charset=utf-8",
			"SOAPAction":   `"` + action + `"`,
		},
		Body: body,
	}
	return req.Marshal(), nil
}

// ParseReply implements Binder.
func (b *SOAPBinder) ParseReply(action string, packet []byte) (*message.Message, error) {
	resp, err := httpwire.ParseResponse(packet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	_, results, err := soap.ParseResponse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse %s reply: %w", action, err)
	}
	abs := message.New(action + ".reply")
	for _, p := range results {
		abs.Add(message.NewPrimitive(p.Name, message.TypeString, p.Value))
	}
	return abs, nil
}

// BuildReply implements Binder.
func (b *SOAPBinder) BuildReply(action string, abs *message.Message) ([]byte, error) {
	body, err := soap.MarshalResponse(action, fieldsToParams(abs.Fields))
	if err != nil {
		return nil, err
	}
	resp := &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/xml; charset=utf-8"},
		Body:    body,
	}
	return resp.Marshal(), nil
}

// BuildErrorReply implements ErrorReplier with a SOAP Fault.
func (b *SOAPBinder) BuildErrorReply(action string, _ *message.Message, errMsg string) ([]byte, error) {
	body, err := soap.MarshalFault(&soap.Fault{Code: "Server", Message: "mediation failed: " + errMsg})
	if err != nil {
		return nil, err
	}
	resp := &httpwire.Response{
		Status:  500,
		Headers: map[string]string{"Content-Type": "text/xml; charset=utf-8"},
		Body:    body,
	}
	return resp.Marshal(), nil
}

var _ ErrorReplier = (*SOAPBinder)(nil)

// fieldsToParams flattens abstract fields to named SOAP parameters.
// Structured fields flatten to one parameter per leaf; repeated fields
// become repeated parameters.
func fieldsToParams(fields []*message.Field) []soap.Param {
	var out []soap.Param
	for _, f := range fields {
		if f.Type.Primitive() {
			out = append(out, soap.Param{Name: f.Label, Value: f.ValueString()})
			continue
		}
		for _, c := range f.Children {
			if c.Type.Primitive() {
				out = append(out, soap.Param{Name: c.Label, Value: c.ValueString()})
			} else {
				out = append(out, fieldsToParams(c.Children)...)
			}
		}
	}
	return out
}
