// Package bind implements Starlink's binding rules (paper Section 4.3):
// the mapping between abstract application actions — an action label plus
// named input/output fields — and the concrete messages of a particular
// middleware protocol. Binding an API usage automaton to a protocol
// yields an executable application-middleware automaton (Fig. 7); at
// runtime the automata engine calls a Binder at every message transition.
//
// One Binder exists per middleware family (XML-RPC, SOAP, REST, GIOP).
// Each is generic over applications: application-specific information
// enters only through models — the MsgDef field lists of the API usage
// automaton (positional-parameter naming) and, for REST, a route table.
//
// Abstract action messages follow one convention everywhere:
//
//   - a request's fields are flat primitives named as in the MsgDef;
//   - a reply's fields are primitives and/or repeated structured children
//     (e.g. one "entry" struct per search result).
package bind

import (
	"errors"

	"starlink/internal/message"
	"starlink/internal/network"
)

// Errors reported by binders.
var (
	// ErrUnknownAction is returned when no rule covers an action label.
	ErrUnknownAction = errors.New("bind: unknown action")
	// ErrBadMessage is wrapped when a concrete message cannot be bound.
	ErrBadMessage = errors.New("bind: cannot bind message")
)

// Binder maps between concrete protocol packets and abstract action
// messages, in both directions and for both requests and replies.
// Implementations must be safe for concurrent use.
type Binder interface {
	// ParseRequest decodes a concrete request packet.
	ParseRequest(packet []byte) (action string, abs *message.Message, err error)
	// BuildRequest encodes an abstract action message as a request packet.
	BuildRequest(action string, abs *message.Message) ([]byte, error)
	// ParseReply decodes the reply packet of a previously issued action.
	ParseReply(action string, packet []byte) (*message.Message, error)
	// BuildReply encodes an abstract reply for an action.
	BuildReply(action string, abs *message.Message) ([]byte, error)
	// Framer returns the wire framer for this protocol.
	Framer() network.Framer
}

// ErrorReplier is an optional Binder capability: building a
// protocol-level error reply (an XML-RPC fault, a SOAP Fault, a JSON-RPC
// error, a GIOP system exception, an HTTP 500) so that a mediation
// failure reaches the client as a proper fault instead of a dropped
// connection. req is the abstract request being answered (for
// correlation ids); it may be nil.
type ErrorReplier interface {
	// BuildErrorReply encodes a fault for the given action.
	BuildErrorReply(action string, req *message.Message, errMsg string) ([]byte, error)
}
