package bind

import (
	"fmt"
	"sync/atomic"

	"starlink/internal/automata"
	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/jsonrpc"
)

// JSONRPCBinder binds abstract actions to JSON-RPC 1.0 over HTTP. Like
// the XML-RPC binder it supports both the single-object-parameter
// convention (members become named abstract fields) and positional
// parameters named from the API usage automaton's MsgDefs.
type JSONRPCBinder struct {
	// Path is the HTTP endpoint path.
	Path string
	// Defs names positional request parameters.
	Defs map[string]automata.MsgDef

	nextID atomic.Uint64
}

var _ Binder = (*JSONRPCBinder)(nil)

// Framer implements Binder.
func (b *JSONRPCBinder) Framer() network.Framer { return network.HTTPFramer{} }

// ParseRequest implements Binder.
func (b *JSONRPCBinder) ParseRequest(packet []byte) (string, *message.Message, error) {
	req, err := httpwire.ParseRequest(packet)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	id, action, params, err := jsonrpc.ParseCall(req.Body)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	abs := message.New(action)
	if len(params) == 1 {
		if obj, ok := params[0].(map[string]any); ok {
			for _, k := range sortedAnyKeys(obj) {
				abs.Add(jsonToField(k, obj[k]))
			}
			abs.Add(message.NewPrimitive("_jsonrpc_id", message.TypeUint64, id))
			return action, abs, nil
		}
	}
	names := b.Defs[action].Fields
	for i, p := range params {
		label := fmt.Sprintf("param%d", i+1)
		if i < len(names) {
			label = names[i]
		}
		abs.Add(jsonToField(label, p))
	}
	abs.Add(message.NewPrimitive("_jsonrpc_id", message.TypeUint64, id))
	return action, abs, nil
}

// BuildRequest implements Binder: abstract fields become one object
// parameter.
func (b *JSONRPCBinder) BuildRequest(action string, abs *message.Message) ([]byte, error) {
	obj := map[string]any{}
	for _, f := range abs.Fields {
		if f.Label == "_jsonrpc_id" {
			continue
		}
		obj[f.Label] = fieldToJSON(f)
	}
	body, err := jsonrpc.MarshalCall(b.nextID.Add(1), action, obj)
	if err != nil {
		return nil, err
	}
	req := &httpwire.Request{
		Method:  "POST",
		Target:  b.Path,
		Headers: map[string]string{"Content-Type": "application/json"},
		Body:    body,
	}
	return req.Marshal(), nil
}

// ParseReply implements Binder.
func (b *JSONRPCBinder) ParseReply(action string, packet []byte) (*message.Message, error) {
	resp, err := httpwire.ParseResponse(packet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	_, result, err := jsonrpc.ParseResponse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse %s reply: %w", action, err)
	}
	abs := message.New(action + ".reply")
	switch v := result.(type) {
	case map[string]any:
		for _, k := range sortedAnyKeys(v) {
			abs.Add(jsonToField(k, v[k]))
		}
	default:
		abs.Add(jsonToField("result", result))
	}
	return abs, nil
}

// BuildReply implements Binder.
func (b *JSONRPCBinder) BuildReply(action string, abs *message.Message) ([]byte, error) {
	var id uint64
	obj := map[string]any{}
	for _, f := range abs.Fields {
		if f.Label == "_jsonrpc_id" {
			if v, ok := f.Value.(uint64); ok {
				id = v
			}
			continue
		}
		obj[f.Label] = fieldToJSON(f)
	}
	var result any = obj
	if len(obj) == 1 {
		if v, ok := obj["result"]; ok {
			result = v
		}
	}
	body, err := jsonrpc.MarshalResult(id, result)
	if err != nil {
		return nil, err
	}
	resp := &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "application/json"},
		Body:    body,
	}
	return resp.Marshal(), nil
}

// BuildErrorReply implements ErrorReplier with a JSON-RPC error.
func (b *JSONRPCBinder) BuildErrorReply(action string, req *message.Message, errMsg string) ([]byte, error) {
	var id uint64
	if req != nil {
		if f := req.Field("_jsonrpc_id"); f != nil {
			if v, ok := f.Value.(uint64); ok {
				id = v
			}
		}
	}
	body, err := jsonrpc.MarshalError(id, "mediation failed: "+errMsg)
	if err != nil {
		return nil, err
	}
	resp := &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "application/json"},
		Body:    body,
	}
	return resp.Marshal(), nil
}

var _ ErrorReplier = (*JSONRPCBinder)(nil)

// jsonToField maps a JSON value onto the abstract field convention.
func jsonToField(label string, v any) *message.Field {
	switch x := v.(type) {
	case map[string]any:
		f := message.NewStruct(label)
		for _, k := range sortedAnyKeys(x) {
			f.Add(jsonToField(k, x[k]))
		}
		return f
	case []any:
		f := message.NewArray(label)
		for _, e := range x {
			f.Add(jsonToField("item", e))
		}
		return f
	case string:
		return message.NewPrimitive(label, message.TypeString, x)
	case float64:
		// JSON numbers arrive as float64; keep integral values as ints so
		// MTL arithmetic and positional GIOP parameters stay exact.
		if x == float64(int64(x)) {
			return message.NewPrimitive(label, message.TypeInt64, int64(x))
		}
		return message.NewPrimitive(label, message.TypeFloat64, x)
	case bool:
		return message.NewPrimitive(label, message.TypeBool, x)
	case nil:
		return message.NewPrimitive(label, message.TypeString, "")
	default:
		return message.NewPrimitive(label, message.TypeString, fmt.Sprint(x))
	}
}

// fieldToJSON is the inverse mapping.
func fieldToJSON(f *message.Field) any {
	if f.Type.Primitive() {
		switch v := f.Value.(type) {
		case string, bool, float64:
			return v
		case int64:
			return v
		case uint64:
			return v
		default:
			return f.ValueString()
		}
	}
	if f.Type == message.TypeArray || allChildrenShareLabel(f) {
		arr := make([]any, 0, len(f.Children))
		for _, c := range f.Children {
			arr = append(arr, fieldToJSON(c))
		}
		return arr
	}
	obj := map[string]any{}
	for _, c := range f.Children {
		obj[c.Label] = fieldToJSON(c)
	}
	return obj
}

func sortedAnyKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
