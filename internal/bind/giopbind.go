package bind

import (
	"fmt"
	"sync/atomic"

	"starlink/internal/automata"
	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
)

// GIOPBinder binds abstract actions to GIOP request/reply messages
// through the binary-MDL codec — the Fig. 7 IIOP binding:
//
//	?Action    = GIOPRequest.Operation
//	!Action    = correlated by RequestID
//	ParameterN = GIOPRequest.ParameterArray.ParameterN
//
// Positional parameters take their abstract names from the API usage
// automaton's MsgDef field order.
type GIOPBinder struct {
	// ObjectKey targets the remote object on BuildRequest.
	ObjectKey string
	// Defs names positional parameters per action; reply parameter names
	// come from the "<action>.reply" entry.
	Defs map[string]automata.MsgDef

	codec  mdl.Codec
	nextID atomic.Uint64
}

var _ Binder = (*GIOPBinder)(nil)

// NewGIOPBinder compiles the GIOP MDL document.
func NewGIOPBinder(objectKey string, defs map[string]automata.MsgDef) (*GIOPBinder, error) {
	codec, err := giop.NewCodec()
	if err != nil {
		return nil, err
	}
	return &GIOPBinder{ObjectKey: objectKey, Defs: defs, codec: codec}, nil
}

// Framer implements Binder.
func (b *GIOPBinder) Framer() network.Framer { return network.GIOPFramer{} }

func (b *GIOPBinder) paramNames(msgName string) []string {
	if b.Defs == nil {
		return nil
	}
	return b.Defs[msgName].Fields
}

// ParseRequest implements Binder.
func (b *GIOPBinder) ParseRequest(packet []byte) (string, *message.Message, error) {
	concrete, err := b.codec.Parse(packet)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if concrete.Name != "GIOPRequest" {
		return "", nil, fmt.Errorf("%w: expected GIOPRequest, got %s", ErrBadMessage, concrete.Name)
	}
	action, err := concrete.GetString("Operation")
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	abs := message.New(action)
	bindPositional(abs, concrete, b.paramNames(action))
	// Remember the request id so the reply can be correlated.
	if id, err := concrete.GetInt("RequestID"); err == nil {
		abs.Add(message.NewPrimitive("_giop_request_id", message.TypeUint64, uint64(id)))
	}
	return action, abs, nil
}

func bindPositional(abs, concrete *message.Message, names []string) {
	arr, err := concrete.Lookup("ParameterArray")
	if err != nil {
		return
	}
	for i, p := range arr.Children {
		label := fmt.Sprintf("param%d", i+1)
		if i < len(names) {
			label = names[i]
		}
		cp := p.Clone()
		cp.Label = label
		abs.Add(cp)
	}
}

// BuildRequest implements Binder: abstract fields become positional CDR
// parameters in MsgDef order.
func (b *GIOPBinder) BuildRequest(action string, abs *message.Message) ([]byte, error) {
	params := b.positionalParams(action, abs)
	req := giop.NewRequest(b.nextID.Add(1), b.ObjectKey, action, params)
	return b.codec.Compose(req)
}

// positionalParams orders abstract fields by the action's MsgDef; fields
// not in the def follow in message order.
func (b *GIOPBinder) positionalParams(msgName string, abs *message.Message) []*message.Field {
	names := b.paramNames(msgName)
	var params []*message.Field
	used := map[string]bool{}
	for _, n := range names {
		if f := abs.Field(n); f != nil {
			cp := f.Clone()
			cp.Label = "Parameter"
			params = append(params, cp)
			used[n] = true
		}
	}
	for _, f := range abs.Fields {
		if used[f.Label] || f.Label == "_giop_request_id" {
			continue
		}
		if len(names) > 0 && contains(names, f.Label) {
			continue
		}
		cp := f.Clone()
		cp.Label = "Parameter"
		params = append(params, cp)
	}
	return params
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// BuildErrorReply implements ErrorReplier with a GIOP system exception.
func (b *GIOPBinder) BuildErrorReply(action string, req *message.Message, errMsg string) ([]byte, error) {
	var id uint64
	if req != nil {
		if f := req.Field("_giop_request_id"); f != nil {
			if v, ok := f.Value.(uint64); ok {
				id = v
			}
		}
	}
	reply := giop.NewReply(id, giop.StatusSystemException,
		[]*message.Field{giop.StringParam("mediation failed: " + errMsg)})
	return b.codec.Compose(reply)
}

var _ ErrorReplier = (*GIOPBinder)(nil)

// ParseReply implements Binder.
func (b *GIOPBinder) ParseReply(action string, packet []byte) (*message.Message, error) {
	concrete, err := b.codec.Parse(packet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if concrete.Name != "GIOPReply" {
		return nil, fmt.Errorf("%w: expected GIOPReply, got %s", ErrBadMessage, concrete.Name)
	}
	status, _ := concrete.GetInt("ReplyStatus")
	if status != giop.StatusNoException {
		return nil, fmt.Errorf("%w: action %s: reply status %d", ErrBadMessage, action, status)
	}
	abs := message.New(action + ".reply")
	bindPositional(abs, concrete, b.paramNames(action+".reply"))
	return abs, nil
}

// BuildReply implements Binder. The request id is taken from the
// "_giop_request_id" field that ParseRequest stashed in the abstract
// request — the engine copies it into the reply environment.
func (b *GIOPBinder) BuildReply(action string, abs *message.Message) ([]byte, error) {
	var id uint64
	if f := abs.Field("_giop_request_id"); f != nil {
		if v, ok := f.Value.(uint64); ok {
			id = v
		}
	}
	filtered := message.New(abs.Name)
	for _, f := range abs.Fields {
		if f.Label != "_giop_request_id" {
			filtered.Add(f)
		}
	}
	reply := giop.NewReply(id, giop.StatusNoException, b.positionalParams(action+".reply", filtered))
	return b.codec.Compose(reply)
}
