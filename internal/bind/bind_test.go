package bind

import (
	"errors"
	"strings"
	"testing"

	"starlink/internal/automata"
	"starlink/internal/casestudy"
	"starlink/internal/message"
)

func TestXMLRPCRequestRoundTrip(t *testing.T) {
	b := &XMLRPCBinder{Path: "/xml-rpc", Defs: casestudy.FlickrUsage().Messages}
	abs := message.New(casestudy.FlickrSearch,
		message.NewPrimitive("api_key", message.TypeString, "k"),
		message.NewPrimitive("text", message.TypeString, "tree"),
		message.NewPrimitive("per_page", message.TypeInt64, 3),
	)
	packet, err := b.BuildRequest(casestudy.FlickrSearch, abs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(packet), "POST /xml-rpc HTTP/1.1\r\n") {
		t.Errorf("packet start: %q", packet[:40])
	}
	action, back, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != casestudy.FlickrSearch {
		t.Errorf("action = %q", action)
	}
	if v, _ := back.GetString("text"); v != "tree" {
		t.Errorf("text = %q", v)
	}
	if v, _ := back.GetInt("per_page"); v != 3 {
		t.Errorf("per_page = %d", v)
	}
}

func TestXMLRPCPositionalParamsNamedFromDefs(t *testing.T) {
	defs := map[string]automata.MsgDef{
		"op": {Name: "op", Fields: []string{"alpha", "beta"}},
	}
	b := &XMLRPCBinder{Path: "/x", Defs: defs}
	// Hand-build a positional call (two scalar params).
	other := &XMLRPCBinder{Path: "/x"}
	_ = other
	packet := buildRawXMLRPC(t, "op", `<param><value><string>a</string></value></param><param><value><int>2</int></value></param>`)
	action, abs, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != "op" {
		t.Errorf("action = %q", action)
	}
	if v, _ := abs.GetString("alpha"); v != "a" {
		t.Errorf("alpha = %q", v)
	}
	if v, _ := abs.GetInt("beta"); v != 2 {
		t.Errorf("beta = %d", v)
	}
	// Extra params beyond the def get positional names.
	packet2 := buildRawXMLRPC(t, "op", `<param><value><string>a</string></value></param><param><value><string>b</string></value></param><param><value><string>c</string></value></param>`)
	_, abs2, err := b.ParseRequest(packet2)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := abs2.GetString("param3"); v != "c" {
		t.Errorf("param3 = %q", v)
	}
}

func buildRawXMLRPC(t *testing.T, method, paramsXML string) []byte {
	t.Helper()
	body := `<?xml version="1.0"?><methodCall><methodName>` + method +
		`</methodName><params>` + paramsXML + `</params></methodCall>`
	raw := "POST /x HTTP/1.1\r\nContent-Type: text/xml\r\nContent-Length: " +
		itoa(len(body)) + "\r\n\r\n" + body
	return []byte(raw)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestXMLRPCReplyRoundTrip(t *testing.T) {
	b := &XMLRPCBinder{Path: "/x"}
	abs := message.New(casestudy.FlickrSearchReply,
		message.NewArray("photos",
			message.NewStruct("item",
				message.NewPrimitive("id", message.TypeString, "p1"),
				message.NewPrimitive("title", message.TypeString, "tree"),
			),
			message.NewStruct("item",
				message.NewPrimitive("id", message.TypeString, "p2"),
				message.NewPrimitive("title", message.TypeString, "oak"),
			),
		),
		message.NewPrimitive("total", message.TypeInt64, 2),
	)
	packet, err := b.BuildReply(casestudy.FlickrSearch, abs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := b.ParseReply(casestudy.FlickrSearch, packet)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.GetInt("total"); v != 2 {
		t.Errorf("total = %d", v)
	}
	if v, _ := back.GetString("photos.item[1].id"); v != "p2" {
		t.Errorf("photos.item[1].id = %q", v)
	}
}

func TestXMLRPCScalarReply(t *testing.T) {
	b := &XMLRPCBinder{Path: "/x"}
	abs := message.New("add.reply", message.NewPrimitive("result", message.TypeInt64, 42))
	packet, err := b.BuildReply("add", abs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := b.ParseReply("add", packet)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.GetInt("result"); v != 42 {
		t.Errorf("result = %d", v)
	}
}

func TestSOAPRoundTrips(t *testing.T) {
	b := &SOAPBinder{Path: "/soap"}
	abs := message.New("Plus",
		message.NewPrimitive("x", message.TypeString, "20"),
		message.NewPrimitive("y", message.TypeString, "22"),
	)
	packet, err := b.BuildRequest("Plus", abs)
	if err != nil {
		t.Fatal(err)
	}
	action, back, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != "Plus" {
		t.Errorf("action = %q", action)
	}
	if v, _ := back.GetString("y"); v != "22" {
		t.Errorf("y = %q", v)
	}

	replyAbs := message.New("Plus.reply", message.NewPrimitive("result", message.TypeString, "42"))
	rp, err := b.BuildReply("Plus", replyAbs)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := b.ParseReply("Plus", rp)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rback.GetString("result"); v != "42" {
		t.Errorf("result = %q", v)
	}
	if rback.Name != "Plus.reply" {
		t.Errorf("reply name = %q", rback.Name)
	}
}

func TestSOAPRepeatedReplyParams(t *testing.T) {
	b := &SOAPBinder{Path: "/soap"}
	abs := message.New("search.reply",
		message.NewPrimitive("photo_id", message.TypeString, "p1"),
		message.NewPrimitive("photo_id", message.TypeString, "p2"),
	)
	packet, err := b.BuildReply("search", abs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := b.ParseReply("search", packet)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, f := range back.Fields {
		if f.Label == "photo_id" {
			ids = append(ids, f.ValueString())
		}
	}
	if len(ids) != 2 || ids[1] != "p2" {
		t.Errorf("ids = %v", ids)
	}
}

const picasaRoutesDoc = `
# Picasa GData routes (Fig. 1)
route picasa.photos.search GET /data/feed/api/all q=q max-results=max-results -> feed
route picasa.getComments GET /data/feed/api/photoid/{photo_id} kind=kind -> feed
route picasa.addComment POST /data/feed/api/photoid/{photo_id} body=entry -> entry
`

func TestParseRoutes(t *testing.T) {
	routes, err := ParseRoutes(picasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 3 {
		t.Fatalf("routes = %d", len(routes))
	}
	if routes[0].Query["q"] != "q" || routes[0].ReplyKind != "feed" {
		t.Errorf("route0 = %+v", routes[0])
	}
	if routes[2].BodyField != "entry" || routes[2].Method != "POST" {
		t.Errorf("route2 = %+v", routes[2])
	}
}

func TestParseRoutesErrors(t *testing.T) {
	bad := []string{
		"route a GET /x",
		"r a GET /x -> feed",
		"route a GET /x -> banana",
		"route a GET /x q -> feed",
		"",
		"# only comments",
	}
	for _, doc := range bad {
		if _, err := ParseRoutes(doc); err == nil {
			t.Errorf("ParseRoutes(%q) accepted", doc)
		}
	}
}

func newRESTBinder(t *testing.T) *RESTBinder {
	t.Helper()
	routes, err := ParseRoutes(picasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRESTBuildRequestFig9(t *testing.T) {
	b := newRESTBinder(t)
	abs := message.New(casestudy.PicasaSearch,
		message.NewPrimitive("q", message.TypeString, "tree"),
		message.NewPrimitive("max-results", message.TypeString, "3"),
	)
	packet, err := b.BuildRequest(casestudy.PicasaSearch, abs)
	if err != nil {
		t.Fatal(err)
	}
	line, _, _ := strings.Cut(string(packet), "\r\n")
	if line != "GET /data/feed/api/all?max-results=3&q=tree HTTP/1.1" {
		t.Errorf("request line = %q", line)
	}
}

func TestRESTRequestRoundTripWithPathVarAndBody(t *testing.T) {
	b := newRESTBinder(t)
	abs := message.New(casestudy.PicasaAddComment,
		message.NewPrimitive("photo_id", message.TypeString, "photo 1"),
		message.NewStruct("entry",
			message.NewPrimitive("summary", message.TypeString, "nice"),
			message.NewPrimitive("author", message.TypeString, "bob"),
		),
	)
	packet, err := b.BuildRequest(casestudy.PicasaAddComment, abs)
	if err != nil {
		t.Fatal(err)
	}
	action, back, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != casestudy.PicasaAddComment {
		t.Errorf("action = %q", action)
	}
	if v, _ := back.GetString("photo_id"); v != "photo 1" {
		t.Errorf("photo_id = %q", v)
	}
	if v, _ := back.GetString("entry.summary"); v != "nice" {
		t.Errorf("summary = %q", v)
	}
}

func TestRESTReplyFeed(t *testing.T) {
	b := newRESTBinder(t)
	replyAbs := message.New(casestudy.PicasaSearchReply,
		message.NewStruct("entry",
			message.NewPrimitive("id", message.TypeString, "p1"),
			message.NewPrimitive("title", message.TypeString, "tree"),
			message.NewPrimitive("src", message.TypeString, "http://x/1.jpg"),
		),
		message.NewStruct("entry",
			message.NewPrimitive("id", message.TypeString, "p2"),
			message.NewPrimitive("title", message.TypeString, "oak"),
		),
	)
	packet, err := b.BuildReply(casestudy.PicasaSearch, replyAbs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := b.ParseReply(casestudy.PicasaSearch, packet)
	if err != nil {
		t.Fatal(err)
	}
	var entries []*message.Field
	for _, f := range back.Fields {
		if f.Label == "entry" {
			entries = append(entries, f)
		}
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Child("src").ValueString() != "http://x/1.jpg" {
		t.Errorf("src = %q", entries[0].Child("src").ValueString())
	}
}

func TestRESTErrors(t *testing.T) {
	b := newRESTBinder(t)
	if _, err := b.BuildRequest("nope", message.New("nope")); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("unknown action err = %v", err)
	}
	// Missing path variable.
	if _, err := b.BuildRequest(casestudy.PicasaGetComments, message.New(casestudy.PicasaGetComments)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("missing path var err = %v", err)
	}
	// Missing body field.
	abs := message.New(casestudy.PicasaAddComment,
		message.NewPrimitive("photo_id", message.TypeString, "p1"))
	if _, err := b.BuildRequest(casestudy.PicasaAddComment, abs); !errors.Is(err, ErrBadMessage) {
		t.Errorf("missing body err = %v", err)
	}
	// Reply with error status.
	badReply := []byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")
	if _, err := b.ParseReply(casestudy.PicasaSearch, badReply); !errors.Is(err, ErrBadMessage) {
		t.Errorf("404 reply err = %v", err)
	}
	// Request matching no route.
	noRoute := []byte("GET /unknown HTTP/1.1\r\n\r\n")
	if _, _, err := b.ParseRequest(noRoute); !errors.Is(err, ErrBadMessage) {
		t.Errorf("no route err = %v", err)
	}
}

func TestGIOPBinderRoundTrips(t *testing.T) {
	defs := map[string]automata.MsgDef{
		"Add":       {Name: "Add", Fields: []string{"x", "y"}},
		"Add.reply": {Name: "Add.reply", Fields: []string{"z"}},
	}
	b, err := NewGIOPBinder("calc", defs)
	if err != nil {
		t.Fatal(err)
	}
	abs := message.New("Add",
		message.NewPrimitive("x", message.TypeInt64, 20),
		message.NewPrimitive("y", message.TypeInt64, 22),
	)
	packet, err := b.BuildRequest("Add", abs)
	if err != nil {
		t.Fatal(err)
	}
	action, back, err := b.ParseRequest(packet)
	if err != nil {
		t.Fatal(err)
	}
	if action != "Add" {
		t.Errorf("action = %q", action)
	}
	if v, _ := back.GetInt("x"); v != 20 {
		t.Errorf("x = %d", v)
	}
	if back.Field("_giop_request_id") == nil {
		t.Error("request id not stashed")
	}

	// Reply: id correlation through the stashed field.
	replyAbs := message.New("Add.reply",
		message.NewPrimitive("z", message.TypeInt64, 42),
	)
	replyAbs.Add(back.Field("_giop_request_id"))
	rPacket, err := b.BuildReply("Add", replyAbs)
	if err != nil {
		t.Fatal(err)
	}
	rBack, err := b.ParseReply("Add", rPacket)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rBack.GetInt("z"); v != 42 {
		t.Errorf("z = %d", v)
	}
}

func TestGIOPBinderErrors(t *testing.T) {
	b, err := NewGIOPBinder("calc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ParseRequest([]byte("garbage")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("garbage err = %v", err)
	}
	if _, err := b.ParseReply("Add", []byte("junk")); !errors.Is(err, ErrBadMessage) {
		t.Errorf("junk reply err = %v", err)
	}
}

func TestFillAndMatchTemplate(t *testing.T) {
	abs := message.New("m", message.NewPrimitive("id", message.TypeString, "a/b"))
	got, err := fillTemplate("/photoid/{id}", abs)
	if err != nil {
		t.Fatal(err)
	}
	vars, ok := matchTemplate("/photoid/{id}", got)
	if !ok || vars["id"] != "a/b" {
		t.Errorf("match = %v, %v", vars, ok)
	}
	if _, ok := matchTemplate("/a/{x}", "/b/c"); ok {
		t.Error("mismatched literal accepted")
	}
	if _, ok := matchTemplate("/a/{x}", "/a"); ok {
		t.Error("length mismatch accepted")
	}
	if _, err := fillTemplate("/p/{missing}", message.New("m")); err == nil {
		t.Error("missing variable accepted")
	}
}
