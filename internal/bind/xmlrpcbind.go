package bind

import (
	"fmt"
	"strings"

	"starlink/internal/automata"
	"starlink/internal/message"
	"starlink/internal/network"
	"starlink/internal/protocol/httpwire"
	"starlink/internal/protocol/xmlrpc"
)

// XMLRPCBinder binds abstract actions to XML-RPC over HTTP.
//
// Binding rules (the Fig. 7 table, instantiated for XML-RPC):
//
//	?Action    = MethodCall.methodName
//	!Action    = the action of the pending call (XML-RPC replies carry none)
//	ParameterN = MethodCall.params.param[N]  — or, when the call follows the
//	             Flickr convention of one struct parameter, members by name
//
// Replies map generically: a struct result becomes one field per member,
// an array member becomes a structured field with one "item" child per
// element, a scalar result becomes the field "result".
type XMLRPCBinder struct {
	// Path is the HTTP endpoint path.
	Path string
	// Defs names positional request parameters (from the API usage
	// automaton's message templates).
	Defs map[string]automata.MsgDef
}

var _ Binder = (*XMLRPCBinder)(nil)

// Framer implements Binder.
func (b *XMLRPCBinder) Framer() network.Framer { return network.HTTPFramer{} }

// ParseRequest implements Binder.
func (b *XMLRPCBinder) ParseRequest(packet []byte) (string, *message.Message, error) {
	req, err := httpwire.ParseRequest(packet)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	action, params, err := xmlrpc.ParseCall(req.Body)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	abs := message.New(action)
	if len(params) == 1 {
		if st, ok := params[0].(map[string]xmlrpc.Value); ok {
			for _, k := range sortedValueKeys(st) {
				abs.Add(valueToField(k, st[k]))
			}
			return action, abs, nil
		}
	}
	names := b.Defs[action].Fields
	for i, p := range params {
		label := fmt.Sprintf("param%d", i+1)
		if i < len(names) {
			label = names[i]
		}
		abs.Add(valueToField(label, p))
	}
	return action, abs, nil
}

// BuildRequest implements Binder: the abstract fields become the members
// of a single struct parameter (the Flickr calling convention).
func (b *XMLRPCBinder) BuildRequest(action string, abs *message.Message) ([]byte, error) {
	st := map[string]xmlrpc.Value{}
	for _, f := range abs.Fields {
		st[f.Label] = fieldToValue(f)
	}
	body, err := xmlrpc.MarshalCall(action, st)
	if err != nil {
		return nil, err
	}
	req := &httpwire.Request{
		Method:  "POST",
		Target:  b.Path,
		Headers: map[string]string{"Content-Type": "text/xml"},
		Body:    body,
	}
	return req.Marshal(), nil
}

// ParseReply implements Binder.
func (b *XMLRPCBinder) ParseReply(action string, packet []byte) (*message.Message, error) {
	resp, err := httpwire.ParseResponse(packet)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	result, err := xmlrpc.ParseResponse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse %s reply: %w", action, err)
	}
	abs := message.New(action + ".reply")
	switch v := result.(type) {
	case map[string]xmlrpc.Value:
		for _, k := range sortedValueKeys(v) {
			abs.Add(valueToField(k, v[k]))
		}
	default:
		abs.Add(valueToField("result", result))
	}
	return abs, nil
}

// BuildReply implements Binder: abstract fields become a struct result.
func (b *XMLRPCBinder) BuildReply(action string, abs *message.Message) ([]byte, error) {
	var result xmlrpc.Value
	if len(abs.Fields) == 1 && abs.Fields[0].Label == "result" {
		result = fieldToValue(abs.Fields[0])
	} else {
		st := map[string]xmlrpc.Value{}
		for _, f := range abs.Fields {
			st[f.Label] = fieldToValue(f)
		}
		result = st
	}
	body, err := xmlrpc.MarshalResponse(result)
	if err != nil {
		return nil, err
	}
	resp := &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/xml"},
		Body:    body,
	}
	return resp.Marshal(), nil
}

// BuildErrorReply implements ErrorReplier with an XML-RPC fault.
func (b *XMLRPCBinder) BuildErrorReply(action string, _ *message.Message, errMsg string) ([]byte, error) {
	body, err := xmlrpc.MarshalFault(&xmlrpc.Fault{Code: 500, Message: "mediation failed: " + errMsg})
	if err != nil {
		return nil, err
	}
	resp := &httpwire.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/xml"},
		Body:    body,
	}
	return resp.Marshal(), nil
}

var _ ErrorReplier = (*XMLRPCBinder)(nil)

// valueToField maps an XML-RPC value onto the abstract field convention.
func valueToField(label string, v xmlrpc.Value) *message.Field {
	switch x := v.(type) {
	case map[string]xmlrpc.Value:
		f := message.NewStruct(label)
		for _, k := range sortedValueKeys(x) {
			f.Add(valueToField(k, x[k]))
		}
		return f
	case []xmlrpc.Value:
		f := message.NewArray(label)
		for _, e := range x {
			f.Add(valueToField("item", e))
		}
		return f
	case string:
		return message.NewPrimitive(label, message.TypeString, x)
	case int64:
		return message.NewPrimitive(label, message.TypeInt64, x)
	case bool:
		return message.NewPrimitive(label, message.TypeBool, x)
	case float64:
		return message.NewPrimitive(label, message.TypeFloat64, x)
	default:
		return message.NewPrimitive(label, message.TypeString, fmt.Sprint(x))
	}
}

// fieldToValue is the inverse mapping.
func fieldToValue(f *message.Field) xmlrpc.Value {
	if f.Type.Primitive() {
		switch v := f.Value.(type) {
		case string, int64, bool, float64:
			return v
		default:
			return f.ValueString()
		}
	}
	if f.Type == message.TypeArray || allChildrenShareLabel(f) {
		var arr []xmlrpc.Value
		for _, c := range f.Children {
			arr = append(arr, fieldToValue(c))
		}
		return arr
	}
	st := map[string]xmlrpc.Value{}
	for _, c := range f.Children {
		st[c.Label] = fieldToValue(c)
	}
	return st
}

func allChildrenShareLabel(f *message.Field) bool {
	if len(f.Children) < 2 {
		return false
	}
	for _, c := range f.Children {
		if c.Label != f.Children[0].Label {
			return false
		}
	}
	return true
}

func sortedValueKeys(m map[string]xmlrpc.Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && strings.Compare(keys[j], keys[j-1]) < 0; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
