package message

import (
	"testing"

	"starlink/internal/testutil"
)

// allocFixture is a tree deep and wide enough that a sloppy path walk
// (splitting the path into a step slice) would show up immediately.
func allocFixture() *Message {
	return New("HTTPOK",
		NewStruct("Body",
			NewStruct("feed",
				NewStruct("entry",
					NewPrimitive("id", TypeString, "1"),
					NewPrimitive("title", TypeString, "first"),
				),
				NewStruct("entry",
					NewPrimitive("id", TypeString, "2"),
					NewPrimitive("title", TypeString, "second"),
				),
			),
		),
		NewPrimitive("Status", TypeInt64, 200),
	)
}

// TestLookupAllocBudget pins Lookup's zero-allocation contract: path
// components are scanned in place, never split into a slice.
func TestLookupAllocBudget(t *testing.T) {
	m := allocFixture()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Lookup("Body.feed.entry[1].title"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Lookup("Status"); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > 0 {
		t.Errorf("Lookup allocated %.1f times per op, budget 0", allocs)
	}
}

// TestSetAllocBudget pins the overwrite fast path: assigning to an
// existing primitive field allocates nothing.
func TestSetAllocBudget(t *testing.T) {
	m := allocFixture()
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.Set("Body.feed.entry[0].title", TypeString, "rewritten"); err != nil {
			t.Fatal(err)
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > 0 {
		t.Errorf("Set overwrite allocated %.1f times per op, budget 0", allocs)
	}
}
