// Package message implements Starlink's abstract message model.
//
// An abstract message is the protocol-independent representation that the
// whole framework manipulates: MDL-generated parsers turn network packets
// into abstract messages, MTL translations rewrite their fields, and
// MDL-generated composers turn them back into wire formats. Following the
// paper (Section 3.1), a message consists of a set of fields, either
// primitive — a label, a type, a length in bits, and a value — or
// structured — a label plus child fields.
package message

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Type describes the data content of a primitive field.
type Type int

// Field data types. TypeStruct marks a structured field; TypeArray marks a
// structured field whose children are an ordered, homogeneous sequence.
const (
	TypeString Type = iota + 1
	TypeInt32
	TypeInt64
	TypeUint32
	TypeUint64
	TypeBool
	TypeFloat64
	TypeBytes
	TypeStruct
	TypeArray
)

var typeNames = map[Type]string{
	TypeString:  "string",
	TypeInt32:   "int32",
	TypeInt64:   "int64",
	TypeUint32:  "uint32",
	TypeUint64:  "uint64",
	TypeBool:    "bool",
	TypeFloat64: "float64",
	TypeBytes:   "bytes",
	TypeStruct:  "struct",
	TypeArray:   "array",
}

// String returns the MDL name of the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "type(" + strconv.Itoa(int(t)) + ")"
}

// ParseType resolves an MDL type name to a Type.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown field type %q", s)
}

// Primitive reports whether values of the type are scalar.
func (t Type) Primitive() bool { return t != TypeStruct && t != TypeArray }

// Errors returned by field navigation and mutation.
var (
	// ErrNoSuchField is returned when a path does not resolve to a field.
	ErrNoSuchField = errors.New("no such field")
	// ErrNotPrimitive is returned when a scalar operation is applied to a
	// structured field.
	ErrNotPrimitive = errors.New("field is not primitive")
	// ErrNotStructured is returned when a child operation is applied to a
	// primitive field.
	ErrNotStructured = errors.New("field is not structured")
)

// Field is one labelled node of an abstract message. Primitive fields carry
// Value; structured fields carry Children.
type Field struct {
	// Label names the field, e.g. "RequestID" or "q".
	Label string
	// Type describes the content.
	Type Type
	// LengthBits is the wire length in bits when fixed (0 = variable).
	LengthBits int
	// Mandatory marks fields that participate in the semantic-equivalence
	// check of Definition 2 (Mfields).
	Mandatory bool
	// Value holds the content of a primitive field. Its dynamic type is
	// string, int64, uint64, bool, float64 or []byte according to Type.
	Value any
	// Children holds the sub-fields of a structured field, in order.
	Children []*Field
}

// NewPrimitive builds a primitive field, normalising the Go value to the
// canonical dynamic type for t.
func NewPrimitive(label string, t Type, value any) *Field {
	f := &Field{Label: label, Type: t}
	f.Value = normalize(t, value)
	return f
}

// NewStruct builds a structured field from its children.
func NewStruct(label string, children ...*Field) *Field {
	return &Field{Label: label, Type: TypeStruct, Children: children}
}

// NewArray builds an ordered-sequence field from its elements.
func NewArray(label string, elems ...*Field) *Field {
	return &Field{Label: label, Type: TypeArray, Children: elems}
}

func normalize(t Type, v any) any {
	if v == nil {
		return nil
	}
	// Already-canonical values are returned as the original interface —
	// `return x` would re-box the concrete value into a fresh `any`,
	// costing an allocation on every Set that overwrites a field.
	switch t {
	case TypeString:
		switch x := v.(type) {
		case string:
			return v
		case []byte:
			return string(x)
		default:
			return fmt.Sprint(x)
		}
	case TypeInt32, TypeInt64:
		if _, ok := v.(int64); ok {
			return v
		}
		return toInt64(v)
	case TypeUint32, TypeUint64:
		if _, ok := v.(uint64); ok {
			return v
		}
		return toUint64(v)
	case TypeBool:
		if _, ok := v.(bool); ok {
			return v
		}
		s := fmt.Sprint(v)
		return s == "true" || s == "1"
	case TypeFloat64:
		if _, ok := v.(float64); ok {
			return v
		}
		return toFloat64(v)
	case TypeBytes:
		switch x := v.(type) {
		case []byte:
			return v
		case string:
			return []byte(x)
		default:
			return []byte(fmt.Sprint(x))
		}
	}
	// Unknown or structured type: render to a string rather than admit an
	// arbitrary (possibly mutable, alias-prone) Go value as a field Value.
	// The Value invariant — string, int64, uint64, bool, float64 or []byte —
	// is what lets Clone guarantee deep copies.
	return fmt.Sprint(v)
}

func toInt64(v any) int64 {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float64:
		return int64(x)
	case string:
		n, _ := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		return n
	case bool:
		if x {
			return 1
		}
		return 0
	}
	return 0
}

func toUint64(v any) uint64 {
	switch x := v.(type) {
	case int:
		return uint64(x)
	case int32:
		return uint64(x)
	case int64:
		return uint64(x)
	case uint32:
		return uint64(x)
	case uint64:
		return x
	case float64:
		return uint64(x)
	case string:
		n, _ := strconv.ParseUint(strings.TrimSpace(x), 10, 64)
		return n
	}
	return 0
}

func toFloat64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	case string:
		f, _ := strconv.ParseFloat(strings.TrimSpace(x), 64)
		return f
	}
	return 0
}

// Child returns the first child with the given label, or nil.
func (f *Field) Child(label string) *Field {
	for _, c := range f.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// Add appends children to a structured field and returns f for chaining.
func (f *Field) Add(children ...*Field) *Field {
	f.Children = append(f.Children, children...)
	return f
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	if f == nil {
		return nil
	}
	cp := &Field{
		Label:      f.Label,
		Type:       f.Type,
		LengthBits: f.LengthBits,
		Mandatory:  f.Mandatory,
	}
	switch v := f.Value.(type) {
	case nil, string, int64, uint64, bool, float64,
		int, int8, int16, int32, uint, uint8, uint16, uint32, float32:
		// Immutable scalars are safe to share.
		cp.Value = f.Value
	case []byte:
		nb := make([]byte, len(v))
		copy(nb, v)
		cp.Value = nb
	default:
		// A directly-constructed Field can smuggle in a slice/map-typed
		// Value that normalize never saw; canonicalise it so the clone
		// never aliases mutable state with the original.
		cp.Value = normalize(f.Type, v)
	}
	if f.Children != nil {
		cp.Children = make([]*Field, len(f.Children))
		for i, c := range f.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Equal reports deep equality of label, type and content.
func (f *Field) Equal(o *Field) bool {
	if f == nil || o == nil {
		return f == o
	}
	if f.Label != o.Label || f.Type != o.Type {
		return false
	}
	if f.Type.Primitive() {
		return valueEqual(f.Value, o.Value)
	}
	if len(f.Children) != len(o.Children) {
		return false
	}
	for i := range f.Children {
		if !f.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

func valueEqual(a, b any) bool {
	ab, aok := a.([]byte)
	bb, bok := b.([]byte)
	if aok && bok {
		return string(ab) == string(bb)
	}
	if aok != bok {
		return false
	}
	return a == b
}

// Message is a named set of fields: the unit the automata engine sends,
// receives and translates.
type Message struct {
	// Name identifies the message kind ("GIOPRequest", "MethodCall", …).
	Name string
	// Fields are the top-level fields, in order.
	Fields []*Field
}

// New builds a message from fields.
func New(name string, fields ...*Field) *Message {
	return &Message{Name: name, Fields: fields}
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	if m == nil {
		return nil
	}
	cp := &Message{Name: m.Name, Fields: make([]*Field, len(m.Fields))}
	for i, f := range m.Fields {
		cp.Fields[i] = f.Clone()
	}
	return cp
}

// Equal reports deep equality with o.
func (m *Message) Equal(o *Message) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.Name != o.Name || len(m.Fields) != len(o.Fields) {
		return false
	}
	for i := range m.Fields {
		if !m.Fields[i].Equal(o.Fields[i]) {
			return false
		}
	}
	return true
}

// Field returns the first top-level field with the given label, or nil.
func (m *Message) Field(label string) *Field {
	for _, f := range m.Fields {
		if f.Label == label {
			return f
		}
	}
	return nil
}

// Add appends top-level fields and returns m for chaining.
func (m *Message) Add(fields ...*Field) *Message {
	m.Fields = append(m.Fields, fields...)
	return m
}

// splitIndex separates one path component into its label and optional
// [n] index (-1 when absent), without allocating.
func splitIndex(p string) (string, int, error) {
	i := strings.IndexByte(p, '[')
	if i < 0 {
		return p, -1, nil
	}
	if !strings.HasSuffix(p, "]") {
		return "", 0, fmt.Errorf("malformed index in path element %q", p)
	}
	n, err := strconv.Atoi(p[i+1 : len(p)-1])
	if err != nil {
		return "", 0, fmt.Errorf("malformed index in path element %q: %v", p, err)
	}
	return p[:i], n, nil
}

// Lookup resolves a dotted path like "Body.entry[2].id" to a field.
// Each component names a child; an optional [n] suffix selects the n-th
// child with that label (0-based). An empty label with an index ("[2]")
// selects the n-th child regardless of label. A successful Lookup does
// not allocate: path components are scanned in place rather than split
// into a step slice.
func (m *Message) Lookup(path string) (*Field, error) {
	if path == "" {
		return nil, fmt.Errorf("empty field path: %w", ErrNoSuchField)
	}
	var cur *Field
	children := m.Fields
	rest := path
	for si := 0; ; si++ {
		part, tail, more := strings.Cut(rest, ".")
		label, index, err := splitIndex(part)
		if err != nil {
			return nil, err
		}
		cur = nil
		if label == "" && index >= 0 {
			if index < len(children) {
				cur = children[index]
			}
		} else {
			seen := 0
			for _, c := range children {
				if c.Label != label {
					continue
				}
				if index < 0 || seen == index {
					cur = c
					break
				}
				seen++
			}
		}
		if cur == nil {
			return nil, fmt.Errorf("%w: %q (element %d of %q)", ErrNoSuchField, label, si, path)
		}
		if !more {
			return cur, nil
		}
		children = cur.Children
		rest = tail
	}
}

// Get returns the value of the primitive field at path.
func (m *Message) Get(path string) (any, error) {
	f, err := m.Lookup(path)
	if err != nil {
		return nil, err
	}
	if !f.Type.Primitive() {
		return nil, fmt.Errorf("%q: %w", path, ErrNotPrimitive)
	}
	return f.Value, nil
}

// GetString returns the field value at path rendered as a string.
func (m *Message) GetString(path string) (string, error) {
	f, err := m.Lookup(path)
	if err != nil {
		return "", err
	}
	return f.ValueString(), nil
}

// GetInt returns the field value at path as an int64.
func (m *Message) GetInt(path string) (int64, error) {
	v, err := m.Get(path)
	if err != nil {
		return 0, err
	}
	return toInt64(v), nil
}

// ValueString renders a primitive field's value as text; structured fields
// render as a bracketed child list.
func (f *Field) ValueString() string {
	if f == nil {
		return ""
	}
	if !f.Type.Primitive() {
		parts := make([]string, len(f.Children))
		for i, c := range f.Children {
			parts[i] = c.ValueString()
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	switch v := f.Value.(type) {
	case nil:
		return ""
	case string:
		return v
	case []byte:
		return string(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case uint64:
		return strconv.FormatUint(v, 10)
	case bool:
		return strconv.FormatBool(v)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// Set assigns a value to the primitive field at path, creating the path
// (as structured fields) if it does not exist. The final component becomes
// a primitive field of type t. Like Lookup, Set scans path components in
// place: overwriting an existing field does not allocate.
func (m *Message) Set(path string, t Type, value any) error {
	if path == "" {
		return fmt.Errorf("empty field path: %w", ErrNoSuchField)
	}
	children := &m.Fields
	rest := path
	for {
		part, tail, more := strings.Cut(rest, ".")
		label, index, err := splitIndex(part)
		if err != nil {
			return err
		}
		var cur *Field
		seen := 0
		for _, c := range *children {
			if c.Label != label {
				continue
			}
			if index < 0 || seen == index {
				cur = c
				break
			}
			seen++
		}
		if cur == nil {
			if index > seen {
				return fmt.Errorf("%w: cannot create %q at index %d (only %d present)",
					ErrNoSuchField, label, index, seen)
			}
			if !more {
				cur = NewPrimitive(label, t, value)
			} else {
				cur = NewStruct(label)
			}
			*children = append(*children, cur)
		}
		if !more {
			if !cur.Type.Primitive() {
				return fmt.Errorf("%q: %w", path, ErrNotPrimitive)
			}
			cur.Type = t
			cur.Value = normalize(t, value)
			return nil
		}
		if cur.Type.Primitive() {
			return fmt.Errorf("%q: %w", label, ErrNotStructured)
		}
		children = &cur.Children
		rest = tail
	}
}

// SetField replaces (or appends) the top-level field with f's label.
func (m *Message) SetField(f *Field) {
	for i, c := range m.Fields {
		if c.Label == f.Label {
			m.Fields[i] = f
			return
		}
	}
	m.Fields = append(m.Fields, f)
}

// MandatoryFields returns the labels of all mandatory fields in the message
// (recursively), sorted — Mfields(n) of Definition 2. If no field is marked
// mandatory, all primitive leaf labels are considered mandatory, which
// matches the paper's reading that an operation's declared parameters are
// its mandatory fields.
func (m *Message) MandatoryFields() []string {
	var explicit, all []string
	var walk func(fs []*Field)
	walk = func(fs []*Field) {
		for _, f := range fs {
			if f.Type.Primitive() {
				all = append(all, f.Label)
				if f.Mandatory {
					explicit = append(explicit, f.Label)
				}
			} else {
				if f.Mandatory {
					explicit = append(explicit, f.Label)
				}
				walk(f.Children)
			}
		}
	}
	walk(m.Fields)
	out := explicit
	if len(out) == 0 {
		out = all
	}
	sort.Strings(out)
	return dedupe(out)
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// String renders the message tree for debugging.
func (m *Message) String() string {
	var b strings.Builder
	b.WriteString(m.Name)
	b.WriteString("{")
	for i, f := range m.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		writeField(&b, f)
	}
	b.WriteString("}")
	return b.String()
}

func writeField(b *strings.Builder, f *Field) {
	b.WriteString(f.Label)
	if f.Type.Primitive() {
		b.WriteString("=")
		b.WriteString(f.ValueString())
		return
	}
	b.WriteString("{")
	for i, c := range f.Children {
		if i > 0 {
			b.WriteString(", ")
		}
		writeField(b, c)
	}
	b.WriteString("}")
}
