package message

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return New("HTTPOK",
		NewPrimitive("Status", TypeInt64, 200),
		NewStruct("Body",
			NewStruct("entry",
				NewPrimitive("id", TypeString, "photo-1"),
				NewPrimitive("title", TypeString, "tree"),
			),
			NewStruct("entry",
				NewPrimitive("id", TypeString, "photo-2"),
				NewPrimitive("title", TypeString, "forest"),
			),
		),
	)
}

func TestParseTypeRoundTrip(t *testing.T) {
	for ty, name := range typeNames {
		got, err := ParseType(name)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", name, err)
		}
		if got != ty {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, ty)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("ParseType(bogus) succeeded, want error")
	}
}

func TestTypePrimitive(t *testing.T) {
	if TypeStruct.Primitive() || TypeArray.Primitive() {
		t.Error("struct/array reported primitive")
	}
	if !TypeString.Primitive() || !TypeBytes.Primitive() {
		t.Error("scalar types reported non-primitive")
	}
}

func TestLookupPaths(t *testing.T) {
	m := sampleMessage()
	tests := []struct {
		path string
		want string
	}{
		{"Status", "200"},
		{"Body.entry.id", "photo-1"},
		{"Body.entry[0].id", "photo-1"},
		{"Body.entry[1].id", "photo-2"},
		{"Body.entry[1].title", "forest"},
		{"Body.[0].id", "photo-1"},
	}
	for _, tt := range tests {
		got, err := m.GetString(tt.path)
		if err != nil {
			t.Errorf("GetString(%q): %v", tt.path, err)
			continue
		}
		if got != tt.want {
			t.Errorf("GetString(%q) = %q, want %q", tt.path, got, tt.want)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	m := sampleMessage()
	for _, path := range []string{"Nope", "Body.entry[5].id", "Body.missing", ""} {
		if _, err := m.Lookup(path); !errors.Is(err, ErrNoSuchField) {
			t.Errorf("Lookup(%q) err = %v, want ErrNoSuchField", path, err)
		}
	}
	if _, err := m.Get("Body"); !errors.Is(err, ErrNotPrimitive) {
		t.Errorf("Get(Body) err = %v, want ErrNotPrimitive", err)
	}
	if _, err := m.Lookup("Body.entry[x].id"); err == nil {
		t.Error("malformed index accepted")
	}
	if _, err := m.Lookup("Body.entry[1.id"); err == nil {
		t.Error("unterminated index accepted")
	}
}

func TestSetCreatesPath(t *testing.T) {
	m := New("MethodResponse")
	if err := m.Set("Params.param", TypeString, "hello"); err != nil {
		t.Fatal(err)
	}
	got, err := m.GetString("Params.param")
	if err != nil || got != "hello" {
		t.Fatalf("round-trip got %q, %v", got, err)
	}
	// Overwrite with a different type.
	if err := m.Set("Params.param", TypeInt64, 42); err != nil {
		t.Fatal(err)
	}
	n, err := m.GetInt("Params.param")
	if err != nil || n != 42 {
		t.Fatalf("after overwrite got %d, %v", n, err)
	}
}

func TestSetRejectsThroughPrimitive(t *testing.T) {
	m := New("M", NewPrimitive("leaf", TypeString, "x"))
	if err := m.Set("leaf.sub", TypeString, "y"); !errors.Is(err, ErrNotStructured) {
		t.Errorf("Set through primitive err = %v, want ErrNotStructured", err)
	}
	m2 := New("M", NewStruct("s"))
	if err := m2.Set("s", TypeString, "y"); !errors.Is(err, ErrNotPrimitive) {
		t.Errorf("Set on struct err = %v, want ErrNotPrimitive", err)
	}
}

func TestSetSparseIndexRejected(t *testing.T) {
	m := New("M")
	if err := m.Set("entry[2].id", TypeString, "x"); !errors.Is(err, ErrNoSuchField) {
		t.Errorf("sparse index err = %v, want ErrNoSuchField", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := sampleMessage()
	cp := m.Clone()
	if !m.Equal(cp) {
		t.Fatal("clone not equal to original")
	}
	if err := cp.Set("Body.entry[0].id", TypeString, "mutated"); err != nil {
		t.Fatal(err)
	}
	orig, _ := m.GetString("Body.entry[0].id")
	if orig != "photo-1" {
		t.Error("mutating clone affected original")
	}
	if m.Equal(cp) {
		t.Error("messages equal after divergent mutation")
	}
}

// TestCloneDirectValueNotShared is the regression test for clones
// aliasing mutable state: a directly-constructed Field (no NewPrimitive,
// so normalize never ran) can carry a slice- or map-typed Value. Clone
// must canonicalise such a value, never share the reference.
func TestCloneDirectValueNotShared(t *testing.T) {
	tags := []string{"a", "b"}
	f := &Field{Label: "tags", Type: TypeString, Value: tags}
	cp := f.Clone()
	tags[0] = "mutated"
	if s, ok := cp.Value.(string); !ok || strings.Contains(s, "mutated") {
		t.Errorf("clone shares slice-typed Value with original: %#v", cp.Value)
	}

	meta := map[string]string{"k": "v"}
	f = &Field{Label: "meta", Type: TypeBytes, Value: meta}
	cp = f.Clone()
	b, ok := cp.Value.([]byte)
	if !ok {
		t.Fatalf("clone did not canonicalise map-typed Value to []byte: %#v", cp.Value)
	}
	meta["k"] = "mutated"
	if strings.Contains(string(b), "mutated") {
		t.Error("clone shares map-typed Value with original")
	}
}

func TestCloneBytesIndependence(t *testing.T) {
	m := New("M", NewPrimitive("raw", TypeBytes, []byte{1, 2, 3}))
	cp := m.Clone()
	b, ok := cp.Field("raw").Value.([]byte)
	if !ok {
		t.Fatal("clone lost []byte value")
	}
	b[0] = 99
	if orig := m.Field("raw").Value.([]byte); orig[0] != 1 {
		t.Error("byte slice shared between clone and original")
	}
}

func TestEqualNilAndMismatch(t *testing.T) {
	var nilMsg *Message
	if !nilMsg.Equal(nil) {
		t.Error("nil != nil")
	}
	if sampleMessage().Equal(nil) {
		t.Error("msg == nil")
	}
	a := New("A", NewPrimitive("x", TypeInt64, 1))
	b := New("A", NewPrimitive("x", TypeInt64, 2))
	if a.Equal(b) {
		t.Error("different values compare equal")
	}
	c := New("A", NewPrimitive("x", TypeString, "1"))
	if a.Equal(c) {
		t.Error("different types compare equal")
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct {
		t    Type
		in   any
		want any
	}{
		{TypeString, 42, "42"},
		{TypeString, []byte("hi"), "hi"},
		{TypeInt64, "17", int64(17)},
		{TypeInt64, uint64(9), int64(9)},
		{TypeInt64, true, int64(1)},
		{TypeUint64, "18", uint64(18)},
		{TypeUint64, int32(7), uint64(7)},
		{TypeBool, "true", true},
		{TypeBool, "1", true},
		{TypeBool, "no", false},
		{TypeFloat64, "2.5", 2.5},
		{TypeFloat64, 3, 3.0},
		{TypeBytes, "abc", []byte("abc")},
	}
	for _, tt := range tests {
		f := NewPrimitive("x", tt.t, tt.in)
		if !reflect.DeepEqual(f.Value, tt.want) {
			t.Errorf("normalize(%v, %#v) = %#v, want %#v", tt.t, tt.in, f.Value, tt.want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		f    *Field
		want string
	}{
		{NewPrimitive("a", TypeString, "s"), "s"},
		{NewPrimitive("a", TypeInt64, -3), "-3"},
		{NewPrimitive("a", TypeUint64, 3), "3"},
		{NewPrimitive("a", TypeBool, true), "true"},
		{NewPrimitive("a", TypeFloat64, 1.5), "1.5"},
		{NewPrimitive("a", TypeBytes, []byte("b")), "b"},
		{NewStruct("a", NewPrimitive("b", TypeInt64, 1)), "[1]"},
		{nil, ""},
		{&Field{Label: "a", Type: TypeString}, ""},
	}
	for i, tt := range tests {
		if got := tt.f.ValueString(); got != tt.want {
			t.Errorf("case %d: ValueString = %q, want %q", i, got, tt.want)
		}
	}
}

func TestMandatoryFields(t *testing.T) {
	m := New("search",
		NewPrimitive("api_key", TypeString, "k"),
		NewPrimitive("text", TypeString, "tree"),
	)
	got := m.MandatoryFields()
	if !reflect.DeepEqual(got, []string{"api_key", "text"}) {
		t.Errorf("implicit mandatory = %v", got)
	}
	m.Field("text").Mandatory = true
	got = m.MandatoryFields()
	if !reflect.DeepEqual(got, []string{"text"}) {
		t.Errorf("explicit mandatory = %v", got)
	}
}

func TestSetFieldReplaces(t *testing.T) {
	m := New("M", NewPrimitive("x", TypeInt64, 1))
	m.SetField(NewPrimitive("x", TypeInt64, 2))
	if n, _ := m.GetInt("x"); n != 2 {
		t.Errorf("SetField did not replace: %d", n)
	}
	m.SetField(NewPrimitive("y", TypeInt64, 3))
	if len(m.Fields) != 2 {
		t.Errorf("SetField did not append, len=%d", len(m.Fields))
	}
}

func TestStringRendering(t *testing.T) {
	m := New("M", NewPrimitive("x", TypeInt64, 1), NewStruct("s", NewPrimitive("y", TypeString, "z")))
	s := m.String()
	for _, want := range []string{"M{", "x=1", "s{", "y=z"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// randomField builds a random field tree for property tests.
func randomField(r *rand.Rand, depth int) *Field {
	if depth <= 0 || r.Intn(3) == 0 {
		types := []Type{TypeString, TypeInt64, TypeUint64, TypeBool, TypeFloat64, TypeBytes}
		t := types[r.Intn(len(types))]
		var v any
		switch t {
		case TypeString:
			v = randLabel(r)
		case TypeInt64:
			v = r.Int63() - r.Int63()
		case TypeUint64:
			v = r.Uint64()
		case TypeBool:
			v = r.Intn(2) == 0
		case TypeFloat64:
			v = r.Float64()
		case TypeBytes:
			b := make([]byte, r.Intn(8))
			r.Read(b)
			v = b
		}
		return NewPrimitive(randLabel(r), t, v)
	}
	n := r.Intn(4)
	kids := make([]*Field, n)
	for i := range kids {
		kids[i] = randomField(r, depth-1)
	}
	return NewStruct(randLabel(r), kids...)
}

func randLabel(r *rand.Rand) string {
	const letters = "abcdefgh"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// RandomMessage builds a random message; exported within the package for
// reuse by quick-check style tests elsewhere.
func randomMessage(r *rand.Rand) *Message {
	n := 1 + r.Intn(5)
	fs := make([]*Field, n)
	for i := range fs {
		fs[i] = randomField(r, 3)
	}
	return New("M"+randLabel(r), fs...)
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		return m.Equal(m.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualSymmetric(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		a := randomMessage(rand.New(rand.NewSource(seed1)))
		b := randomMessage(rand.New(rand.NewSource(seed2)))
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypeStringUnknown(t *testing.T) {
	if got := Type(99).String(); got != "type(99)" {
		t.Errorf("unknown type = %q", got)
	}
	if TypeArray.String() != "array" {
		t.Error("array name")
	}
}

func TestChildAndAddHelpers(t *testing.T) {
	f := NewStruct("s").Add(NewPrimitive("a", TypeInt64, 1))
	if f.Child("a") == nil || f.Child("zz") != nil {
		t.Error("Child lookup")
	}
	arr := NewArray("list", NewPrimitive("item", TypeString, "x"))
	if arr.Type != TypeArray || len(arr.Children) != 1 {
		t.Errorf("NewArray = %+v", arr)
	}
	m := New("M").Add(NewPrimitive("x", TypeInt64, 1))
	if len(m.Fields) != 1 {
		t.Error("Message.Add")
	}
}

func TestNumericCoercions(t *testing.T) {
	cases := []struct {
		t    Type
		in   any
		want any
	}{
		{TypeInt64, int32(5), int64(5)},
		{TypeInt64, 2.9, int64(2)},
		{TypeUint64, uint32(6), uint64(6)},
		{TypeUint64, uint64(7), uint64(7)},
		{TypeUint64, 3.0, uint64(3)},
		{TypeFloat64, float32(1.5), 1.5},
		{TypeFloat64, int64(4), 4.0},
		{TypeFloat64, uint64(5), 5.0},
	}
	for _, c := range cases {
		got := NewPrimitive("x", c.t, c.in).Value
		if got != c.want {
			t.Errorf("normalize(%v, %#v) = %#v, want %#v", c.t, c.in, got, c.want)
		}
	}
}
