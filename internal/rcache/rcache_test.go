package rcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/message"
)

func reply(v string) *message.Message {
	return message.New("Reply",
		message.NewPrimitive("result", message.TypeString, v),
		message.NewStruct("meta", message.NewPrimitive("server", message.TypeString, "s1")),
	)
}

func req(q string) *message.Message {
	return message.New("Req",
		message.NewPrimitive("q", message.TypeString, q),
		message.NewPrimitive("_jsonrpc_id", message.TypeUint64, uint64(42)),
	)
}

func TestKeyCanonical(t *testing.T) {
	k1 := Key("catalog.search", "addr:1", req("espresso"), nil)
	k2 := Key("catalog.search", "addr:1", req("espresso"), nil)
	if k1 != k2 {
		t.Fatalf("identical messages produced different keys:\n%q\n%q", k1, k2)
	}
	if k3 := Key("catalog.search", "addr:1", req("grinder"), nil); k3 == k1 {
		t.Fatal("different field values produced the same key")
	}
	if k4 := Key("catalog.other", "addr:1", req("espresso"), nil); k4 == k1 {
		t.Fatal("different operations produced the same key")
	}
	if k5 := Key("catalog.search", "addr:2", req("espresso"), nil); k5 == k1 {
		t.Fatal("different service addresses produced the same key")
	}
}

// TestKeySkipsBinderInternals: the "_"-prefixed correlation fields a
// binder attaches (e.g. _jsonrpc_id) differ on every exchange and must
// not fragment the key space.
func TestKeySkipsBinderInternals(t *testing.T) {
	a := req("espresso")
	b := req("espresso")
	b.Field("_jsonrpc_id").Value = uint64(7777)
	if Key("op", "addr", a, nil) != Key("op", "addr", b, nil) {
		t.Fatal("binder-internal field leaked into the cache key")
	}
}

func TestKeyVary(t *testing.T) {
	a := message.New("Req",
		message.NewPrimitive("q", message.TypeString, "espresso"),
		message.NewPrimitive("session_token", message.TypeString, "tok-1"),
	)
	b := message.New("Req",
		message.NewPrimitive("q", message.TypeString, "espresso"),
		message.NewPrimitive("session_token", message.TypeString, "tok-2"),
	)
	if Key("op", "addr", a, []string{"q"}) != Key("op", "addr", b, []string{"q"}) {
		t.Fatal("vary=q should ignore the differing session_token")
	}
	if Key("op", "addr", a, nil) == Key("op", "addr", b, nil) {
		t.Fatal("without vary, differing fields must produce different keys")
	}
	if Key("op", "addr", a, []string{"session_token"}) == Key("op", "addr", b, []string{"session_token"}) {
		t.Fatal("vary=session_token must see the differing token")
	}
}

func TestAcquireMissFulfillHit(t *testing.T) {
	c := New(Options{})
	key := Key("op", "addr", req("x"), nil)

	got, f, leader := c.Acquire("op", key)
	if got != nil || !leader {
		t.Fatalf("first Acquire: got reply=%v leader=%v, want miss+leader", got, leader)
	}
	orig := reply("v1")
	orig.Fields = append(orig.Fields, message.NewPrimitive("_giop_req", message.TypeUint64, uint64(9)))
	c.Fulfill(f, orig, time.Minute)

	got, f2, leader := c.Acquire("op", key)
	if got == nil || f2 != nil || leader {
		t.Fatalf("second Acquire: want hit, got reply=%v flight=%v leader=%v", got, f2, leader)
	}
	if got.Field("_giop_req") != nil {
		t.Fatal("binder-internal field survived into the cached reply")
	}
	if v, _ := got.GetString("result"); v != "v1" {
		t.Fatalf("cached reply result = %q, want v1", v)
	}
	// The hit must be a deep clone: mutating it cannot poison the cache.
	got.Field("result").Value = "poisoned"
	again, _, _ := c.Acquire("op", key)
	if v, _ := again.GetString("result"); v != "v1" {
		t.Fatalf("cache entry was aliased by a served reply: result = %q", v)
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(Options{})
	key := "k"
	_, f, _ := c.Acquire("op", key)
	c.Fulfill(f, reply("v"), 10*time.Millisecond)
	if got, _, _ := c.Acquire("op", key); got == nil {
		t.Fatal("entry should be live inside its TTL")
	}
	time.Sleep(20 * time.Millisecond)
	got, _, leader := c.Acquire("op", key)
	if got != nil || !leader {
		t.Fatal("expired entry should miss and elect a new leader")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("expiry should count as an eviction, stats = %+v", st)
	}
}

func TestCoalescing(t *testing.T) {
	c := New(Options{})
	key := "k"
	_, lead, isLead := c.Acquire("op", key)
	if !isLead {
		t.Fatal("want leader")
	}
	const followers = 16
	var wg sync.WaitGroup
	var served atomic.Uint64
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, f, leader := c.Acquire("op", key)
			if got != nil || leader {
				t.Errorf("follower got reply=%v leader=%v", got, leader)
				return
			}
			rep, err := f.Wait(time.Second)
			if err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			if v, _ := rep.GetString("result"); v != "v" {
				t.Errorf("follower reply = %q", v)
				return
			}
			served.Add(1)
		}()
	}
	// Give followers time to join before the leader fulfils.
	time.Sleep(20 * time.Millisecond)
	c.Fulfill(lead, reply("v"), time.Minute)
	wg.Wait()
	if served.Load() != followers {
		t.Fatalf("served %d followers, want %d", served.Load(), followers)
	}
	if st := c.Stats(); st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
}

func TestAbortWakesFollowers(t *testing.T) {
	c := New(Options{})
	_, lead, _ := c.Acquire("op", "k")
	_, follower, _ := c.Acquire("op", "k")
	go c.Abort(lead, nil)
	if _, err := follower.Wait(time.Second); !errors.Is(err, ErrAborted) {
		t.Fatalf("Wait after abort: %v, want ErrAborted", err)
	}
	// The key must be leadable again.
	if _, _, leader := c.Acquire("op", "k"); !leader {
		t.Fatal("aborted key should elect a fresh leader")
	}
}

func TestWaitTimeout(t *testing.T) {
	c := New(Options{})
	_, _, _ = c.Acquire("op", "k")
	_, follower, _ := c.Acquire("op", "k")
	if _, err := follower.Wait(5 * time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("Wait: %v, want ErrWaitTimeout", err)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Options{})
	for i, op := range []string{"read.a", "read.a", "read.b"} {
		key := fmt.Sprintf("k%d", i)
		_, f, _ := c.Acquire(op, key)
		c.Fulfill(f, reply("v"), time.Minute)
	}
	if n := c.Invalidate([]string{"read.a"}); n != 2 {
		t.Fatalf("Invalidate removed %d, want 2", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after invalidation, want 1", c.Len())
	}
	if got, _, _ := c.Acquire("read.b", "k2"); got == nil {
		t.Fatal("unrelated operation was invalidated")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
}

// TestInvalidateMarksFlightStale: a write racing an in-flight read must
// prevent the read's result from being stored (it may be pre-write
// data), while still serving the waiting followers.
func TestInvalidateMarksFlightStale(t *testing.T) {
	c := New(Options{})
	_, lead, _ := c.Acquire("read.a", "k")
	_, follower, _ := c.Acquire("read.a", "k")
	c.Invalidate([]string{"read.a"})
	done := make(chan struct{})
	go func() {
		if rep, err := follower.Wait(time.Second); err != nil || rep == nil {
			t.Errorf("follower not served across stale fulfil: %v", err)
		}
		close(done)
	}()
	c.Fulfill(lead, reply("stale"), time.Minute)
	<-done
	if got, _, _ := c.Acquire("read.a", "k"); got != nil {
		t.Fatal("stale flight result was stored despite invalidation")
	}
}

func TestLRUBound(t *testing.T) {
	c := New(Options{MaxEntries: 8, Shards: 1})
	for i := 0; i < 50; i++ {
		c.Put("op", fmt.Sprintf("k%d", i), reply("v"), time.Minute)
	}
	if c.Len() > 8 {
		t.Fatalf("cache holds %d entries, bound is 8", c.Len())
	}
	if st := c.Stats(); st.Evictions != 42 {
		t.Fatalf("evictions = %d, want 42", st.Evictions)
	}
	// Most recent keys survive.
	if got, _, _ := c.Acquire("op", "k49"); got == nil {
		t.Fatal("most recently stored key was evicted")
	}
	if got, _, _ := c.Acquire("op", "k0"); got != nil {
		t.Fatal("oldest key survived past the bound")
	}
}

func TestPutFollowerFallback(t *testing.T) {
	c := New(Options{})
	c.Put("op", "k", reply("v"), time.Minute)
	if got, _, _ := c.Acquire("op", "k"); got == nil {
		t.Fatal("Put entry not served")
	}
	// ttl <= 0 is a no-op.
	c.Put("op", "k2", reply("v"), 0)
	if _, _, leader := c.Acquire("op", "k2"); !leader {
		t.Fatal("zero-TTL Put should not store")
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(Options{MaxEntries: 64, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				op := fmt.Sprintf("op%d", i%3)
				got, f, leader := c.Acquire(op, key)
				switch {
				case got != nil:
				case leader:
					if i%7 == 0 {
						c.Abort(f, nil)
					} else {
						c.Fulfill(f, reply("v"), time.Millisecond*50)
					}
				default:
					if _, err := f.Wait(time.Second); err != nil {
						c.Put(op, key, reply("v"), time.Millisecond*50)
					}
				}
				if i%41 == 0 {
					c.Invalidate([]string{"op0"})
				}
			}
		}(g)
	}
	wg.Wait()
}
