// Package rcache implements Starlink's shared, cross-flow mediation
// response cache with single-flight request coalescing.
//
// The MTL cache/getcache keywords (Fig. 10 of the paper) resolve
// extra-message mismatches within one flow; this package exploits the
// complementary observation that under load many concurrent flows ask
// the mediated service the same read-mostly questions. A Cache is
// shared by every session of a mediator and consulted at the
// service-send transition: a flow either serves a deep-cloned cached
// reply, joins an in-flight leader's exchange (single-flight), or
// executes the exchange itself and populates the cache.
//
// Entries are keyed by a canonical rendering of the outbound
// service-side abstract message (operation, resolved service address,
// field tree), sharded across independently locked TTL+LRU maps so
// concurrent sessions do not serialise on one mutex. Binder-internal
// correlation fields (labels starting with "_", e.g. the JSON-RPC
// request id) are excluded from keys and stripped from stored replies:
// they are per-exchange bookkeeping, not message content.
package rcache

import (
	"container/list"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/message"
)

// Errors returned by flight waiting.
var (
	// ErrAborted is returned by Wait when the leader's exchange failed;
	// the follower should fall back to its own service exchange.
	ErrAborted = errors.New("rcache: leader aborted")
	// ErrWaitTimeout is returned by Wait when the leader did not
	// complete within the follower's patience.
	ErrWaitTimeout = errors.New("rcache: wait for leader timed out")
)

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the total number of cached replies across all
	// shards (approximately: the bound is enforced per shard as
	// MaxEntries/Shards). 0 means DefaultMaxEntries.
	MaxEntries int
	// Shards is the number of independently locked segments. 0 means
	// DefaultShards.
	Shards int
}

// Defaults applied when Options fields are zero.
const (
	DefaultMaxEntries = 1024
	DefaultShards     = 8
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts lookups served from a stored reply.
	Hits uint64
	// Misses counts lookups that found nothing and elected the caller
	// leader of a new flight.
	Misses uint64
	// Coalesced counts lookups that joined an in-flight leader instead
	// of performing their own service exchange.
	Coalesced uint64
	// Evictions counts entries removed by LRU pressure or TTL expiry.
	Evictions uint64
	// Invalidations counts entries removed by write-operation
	// invalidation.
	Invalidations uint64
}

// Flight is one in-progress service exchange that followers may join.
// The leader completes it with Cache.Fulfill or Cache.Abort; followers
// block in Wait. The done channel is created lazily under the shard
// lock by the first follower, so the common uncontended miss pays no
// channel allocation.
type Flight struct {
	key   string
	op    string
	done  chan struct{}    // nil until a follower joins
	reply *message.Message // set before done closes; nil on abort
	err   error            // set before done closes on abort
	stale bool             // racing Invalidate: fulfil waiters but skip the store
}

type entry struct {
	key     string
	op      string
	reply   *message.Message // stored stripped clone; cloned again per hit
	expires time.Time
	elem    *list.Element
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; Value is *entry
	flights map[string]*Flight
	cap     int
}

// Cache is a sharded TTL+LRU response cache with single-flight
// coalescing. All methods are safe for concurrent use.
type Cache struct {
	shards []*shard

	hits          atomic.Uint64
	misses        atomic.Uint64
	coalesced     atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// New builds a Cache. Zero Options fields take the package defaults.
func New(opts Options) *Cache {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	perShard := (max + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]*shard, n)}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries: make(map[string]*entry),
			lru:     list.New(),
			flights: make(map[string]*Flight),
			cap:     perShard,
		}
	}
	return c
}

// Stats returns the current counter values.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Len returns the number of live entries across all shards (expired
// entries not yet collected are counted).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// fnv1a hashes the key without allocating.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return c.shards[fnv1a(key)%uint64(len(c.shards))]
}

// Acquire looks the key up and decides the caller's role. Exactly one
// of the three outcomes holds:
//
//   - cached reply: (reply, nil, false) — reply is a fresh deep clone
//     the caller owns outright;
//   - join an in-flight leader: (nil, flight, false) — call
//     flight-returning Wait;
//   - lead a new flight: (nil, flight, true) — perform the exchange,
//     then Fulfill or Abort the flight.
func (c *Cache) Acquire(op, key string) (*message.Message, *Flight, bool) {
	s := c.shardFor(key)
	now := time.Now()
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if now.Before(e.expires) {
			s.lru.MoveToFront(e.elem)
			reply := e.reply
			s.mu.Unlock()
			c.hits.Add(1)
			return reply.Clone(), nil, false
		}
		s.removeLocked(e)
		c.evictions.Add(1)
	}
	if f, ok := s.flights[key]; ok {
		if f.done == nil {
			f.done = make(chan struct{})
		}
		s.mu.Unlock()
		c.coalesced.Add(1)
		return nil, f, false
	}
	f := &Flight{key: key, op: op}
	s.flights[key] = f
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, f, true
}

// Wait blocks until the flight's leader fulfils or aborts it, or the
// timeout elapses. On fulfilment the follower receives its own deep
// clone of the reply. On abort or timeout the follower should fall
// back to a direct service exchange (and may Put the result).
func (f *Flight) Wait(timeout time.Duration) (*message.Message, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		return f.reply.Clone(), nil
	case <-t.C:
		return nil, ErrWaitTimeout
	}
}

// Op returns the operation the flight is for.
func (f *Flight) Op() string { return f.op }

// Fulfill completes a led flight: followers are woken with reply, and
// (unless a write invalidated the operation mid-flight, or ttl <= 0)
// a stripped deep clone is stored for ttl. The caller keeps ownership
// of reply; the cache never aliases it.
func (c *Cache) Fulfill(f *Flight, reply *message.Message, ttl time.Duration) {
	stored := stripInternal(reply)
	expires := time.Now().Add(ttl)
	s := c.shardFor(f.key)
	s.mu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	if !f.stale && ttl > 0 {
		c.storeLocked(s, f.key, f.op, stored, expires)
	}
	done := f.done
	s.mu.Unlock()
	f.reply = stored
	if done != nil {
		close(done)
	}
}

// Abort completes a led flight without a reply: followers wake with
// ErrAborted (or err, if non-nil) and fall back to their own
// exchanges.
func (c *Cache) Abort(f *Flight, err error) {
	s := c.shardFor(f.key)
	s.mu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	done := f.done
	s.mu.Unlock()
	if err == nil {
		err = ErrAborted
	}
	f.err = err
	if done != nil {
		close(done)
	}
}

// Put stores a reply directly — the follower-fallback path, where a
// flow performed its own exchange after its leader aborted. A racing
// flight for the key is left untouched.
func (c *Cache) Put(op, key string, reply *message.Message, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	stored := stripInternal(reply)
	expires := time.Now().Add(ttl)
	s := c.shardFor(key)
	s.mu.Lock()
	c.storeLocked(s, key, op, stored, expires)
	s.mu.Unlock()
}

// storeLocked inserts or refreshes an entry; the shard mutex is held.
func (c *Cache) storeLocked(s *shard, key, op string, reply *message.Message, expires time.Time) {
	if e, ok := s.entries[key]; ok {
		e.reply = reply
		e.op = op
		e.expires = expires
		s.lru.MoveToFront(e.elem)
		return
	}
	e := &entry{key: key, op: op, reply: reply, expires: expires}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	for len(s.entries) > s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.removeLocked(back.Value.(*entry))
		c.evictions.Add(1)
	}
}

func (s *shard) removeLocked(e *entry) {
	delete(s.entries, e.key)
	s.lru.Remove(e.elem)
}

// Flush drops every stored reply, counting each as an eviction.
// In-flight flights are left alone: their leaders' results still wake
// followers (and may re-populate the cache). It returns the number of
// entries dropped. This is the administrative reset exposed as
// Mediator.CacheFlush, used by embedding programs and by tests that
// need a deterministic TTL-window rollover.
func (c *Cache) Flush() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			s.removeLocked(e)
			n++
		}
		s.mu.Unlock()
	}
	if n > 0 {
		c.evictions.Add(uint64(n))
	}
	return n
}

// Invalidate removes every stored reply whose operation is in ops and
// marks matching in-flight flights stale (their followers are still
// served, but the result is not stored). It returns the number of
// entries removed. This is the write-operation hook: a flow about to
// send a mutating operation calls Invalidate with the operations its
// spec declares it invalidates.
func (c *Cache) Invalidate(ops []string) int {
	if len(ops) == 0 {
		return 0
	}
	match := func(op string) bool {
		for _, o := range ops {
			if o == op {
				return true
			}
		}
		return false
	}
	removed := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			if match(e.op) {
				s.removeLocked(e)
				removed++
			}
		}
		for _, f := range s.flights {
			if match(f.op) {
				f.stale = true
			}
		}
		s.mu.Unlock()
	}
	if removed > 0 {
		c.invalidations.Add(uint64(removed))
	}
	return removed
}

// stripInternal deep-clones msg, dropping top-level binder-internal
// fields ("_"-prefixed labels such as _jsonrpc_id): those are
// per-exchange correlation state, and replaying them from a cache
// would leak one exchange's bookkeeping into another's.
func stripInternal(msg *message.Message) *message.Message {
	cp := msg.Clone()
	kept := cp.Fields[:0]
	for _, f := range cp.Fields {
		if strings.HasPrefix(f.Label, "_") {
			continue
		}
		kept = append(kept, f)
	}
	cp.Fields = kept
	return cp
}
