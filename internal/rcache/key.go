package rcache

import (
	"strings"

	"starlink/internal/message"
)

// Key field-separator control bytes. Using bytes that cannot appear in
// directive-validated operation names or in canonical value renderings
// of adjacent fields keeps the key unambiguous: two different message
// trees can never render to the same key string.
const (
	sepTop   = '\x1f' // between op, addr, and the field section
	sepField = '\x1e' // between sibling fields
	sepLabel = '\x1d' // between a field's label/type and its content
)

// Key renders the canonical cache key for an outbound service-side
// abstract message: the operation name, the resolved service address,
// and the message's field tree. The key is the exact canonical string
// (shard selection hashes it, but equality is on the full string), so
// distinct requests can never collide.
//
// When vary is non-empty, only the listed field paths participate —
// the spec's `vary=` clause — so requests differing in other fields
// share an entry. Otherwise every top-level field participates except
// binder-internal "_"-prefixed labels.
func Key(op, addr string, msg *message.Message, vary []string) string {
	var b strings.Builder
	b.Grow(192)
	b.WriteString(op)
	b.WriteByte(sepTop)
	b.WriteString(addr)
	b.WriteByte(sepTop)
	if len(vary) > 0 {
		for _, path := range vary {
			b.WriteString(path)
			b.WriteByte(sepLabel)
			if f, err := msg.Lookup(path); err == nil {
				writeCanon(&b, f)
			}
			b.WriteByte(sepField)
		}
		return b.String()
	}
	for _, f := range msg.Fields {
		if strings.HasPrefix(f.Label, "_") {
			continue
		}
		writeCanon(&b, f)
		b.WriteByte(sepField)
	}
	return b.String()
}

// writeCanon renders one field canonically: label, type tag, then the
// scalar value or the recursively rendered children.
func writeCanon(b *strings.Builder, f *message.Field) {
	b.WriteString(f.Label)
	b.WriteByte(sepLabel)
	b.WriteByte(byte('0' + int(f.Type)))
	b.WriteByte(sepLabel)
	if f.Type.Primitive() {
		b.WriteString(f.ValueString())
		return
	}
	b.WriteByte('{')
	for i, c := range f.Children {
		if i > 0 {
			b.WriteByte(sepField)
		}
		writeCanon(b, c)
	}
	b.WriteByte('}')
}
