package rcache

import (
	"testing"
	"time"

	"starlink/internal/testutil"
)

// TestCacheHitAllocBudget pins the cache-hit fast path: rendering the
// canonical key for an outbound request and serving a stored reply
// (Acquire hit, which deep-clones the entry) must stay within a fixed
// allocation budget. This is the path every cache-served flow pays
// instead of a service exchange, so regressions here erode the very
// latency win the cache exists for. The deep clone is mandatory:
// callers mutate replies during γ translation, and the stored copy
// must stay pristine.
func TestCacheHitAllocBudget(t *testing.T) {
	c := New(Options{})
	outbound := req("espresso")
	key := Key("catalog.search", "127.0.0.1:9999", outbound, nil)
	c.Put("catalog.search", key, reply("stored"), time.Hour)

	allocs := testing.AllocsPerRun(500, func() {
		k := Key("catalog.search", "127.0.0.1:9999", outbound, nil)
		hit, _, _ := c.Acquire("catalog.search", k)
		if hit == nil {
			t.Fatal("expected a cache hit")
		}
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > hitBudget {
		t.Errorf("key+hit path allocated %.1f times per op, budget %d", allocs, hitBudget)
	}
}

// hitBudget covers one key string plus the deep clone of the stored
// reply (Message, Fields slice, two Fields, one child and its slice)
// — no per-hit map, list or flight allocation on top of that.
const hitBudget = 8

// TestMissCycleAllocBudget pins the uncontended miss: leader election,
// Fulfill (which stores a stripped clone) and the flight bookkeeping.
// The lazy done channel keeps the follower-free case channel-free.
func TestMissCycleAllocBudget(t *testing.T) {
	c := New(Options{})
	outbound := req("espresso")
	rep := reply("fresh")

	allocs := testing.AllocsPerRun(200, func() {
		k := Key("catalog.search", "127.0.0.1:9999", outbound, nil)
		hit, f, lead := c.Acquire("catalog.search", k)
		if hit != nil || !lead {
			t.Fatal("expected to lead a new flight")
		}
		c.Fulfill(f, rep, 0) // ttl 0: fulfil without storing, so every run misses
	})
	if testutil.RaceEnabled {
		t.Skipf("race detector enabled; measured %.1f allocs/op unasserted", allocs)
	}
	if allocs > missBudget {
		t.Errorf("miss cycle allocated %.1f times per op, budget %d", allocs, missBudget)
	}
}

// missBudget covers the key string, the Flight, and the stripped clone
// Fulfill builds for waking followers.
const missBudget = 10
