package engine_test

import (
	"testing"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// branchingMediator models client-chosen behaviour: after the search the
// client may call getInfo any number of times (each answered from the
// mediator cache and looping back to the hub) before calling getComments,
// which ends the behaviour. The automaton is a graph with a cycle — the
// engine follows whichever invocation arrives.
func branchingMediator() *automata.Merged {
	st := func(name string, colors ...int) automata.MergedState {
		return automata.MergedState{Name: name, Colors: colors}
	}
	msg := func(from, to string, color int, act automata.Action, m string) automata.MergedTransition {
		return automata.MergedTransition{From: from, To: to, Kind: automata.KindMessage, Color: color, Action: act, Message: m}
	}
	gamma := func(from, to, mtl string) automata.MergedTransition {
		return automata.MergedTransition{From: from, To: to, Kind: automata.KindGamma, MTL: mtl}
	}
	return &automata.Merged{
		Name: "branching-photo", Color1: 1, Color2: 2,
		Start: "b0", Final: []string{"bEnd"},
		States: []automata.MergedState{
			st("b0", 1), st("b1", 1, 2), st("b2", 2), st("b3", 2), st("b4", 1, 2),
			st("b5", 1), st("hub", 1),
			st("i1", 1), st("i2", 1),
			st("c1", 1, 2), st("c2", 2), st("c3", 2), st("c4", 1, 2), st("c5", 1), st("bEnd", 1),
		},
		Transitions: []automata.MergedTransition{
			// search -> picasa search
			msg("b0", "b1", 1, automata.Send, casestudy.FlickrSearch),
			gamma("b1", "b2", `
sethost("`+casestudy.PicasaHost+`")
b2.Msg.q = b1.Msg.text
try b2.Msg.max-results = b1.Msg.per_page
`),
			msg("b2", "b3", 2, automata.Send, casestudy.PicasaSearch),
			msg("b3", "b4", 2, automata.Receive, casestudy.PicasaSearchReply),
			gamma("b4", "b5", `
b5.Msg.photos = newarray("photos")
foreach e in b4.Msg.entry {
  cache(e.id, e)
  p = newstruct("item")
  p.id = e.id
  p.title = e.title
  b5.Msg.photos.item[] = p
}
b5.Msg.total = count(b4.Msg)
`),
			msg("b5", "hub", 1, automata.Receive, casestudy.FlickrSearchReply),

			// hub branch 1: getInfo (cache), loops back to hub
			msg("hub", "i1", 1, automata.Send, casestudy.FlickrGetInfo),
			gamma("i1", "i2", `
entry = getcache(i1.Msg.photo_id)
i2.Msg.id = i1.Msg.photo_id
i2.Msg.title = entry.title
try i2.Msg.url = entry.src
`),
			msg("i2", "hub", 1, automata.Receive, casestudy.FlickrGetInfoReply),

			// hub branch 2: getComments -> picasa -> end
			msg("hub", "c1", 1, automata.Send, casestudy.FlickrGetComments),
			gamma("c1", "c2", `
c2.Msg.photo_id = c1.Msg.photo_id
c2.Msg.kind = "comment"
`),
			msg("c2", "c3", 2, automata.Send, casestudy.PicasaGetComments),
			msg("c3", "c4", 2, automata.Receive, casestudy.PicasaCommentsReply),
			gamma("c4", "c5", `
c5.Msg.comments = newarray("comments")
foreach e in c4.Msg.entry {
  c = newstruct("item")
  c.id = e.id
  c.text = e.summary
  c5.Msg.comments.item[] = c
}
`),
			msg("c5", "bEnd", 1, automata.Receive, casestudy.FlickrCommentsReply),
		},
	}
}

func startBranching(t *testing.T) (*engine.Mediator, *photostore.Store) {
	t.Helper()
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pic.Close() })
	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: branchingMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/x", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: pic.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	return med, store
}

func TestBranchingClientRepeatsGetInfo(t *testing.T) {
	med, store := startBranching(t)
	c := xmlrpc.NewClient(med.Addr(), "/x")
	defer c.Close()

	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	if len(photos) != 3 {
		t.Fatalf("photos = %d", len(photos))
	}
	// The client inspects EVERY photo before asking for comments — three
	// getInfo calls through the hub loop.
	for _, p := range photos {
		id := p.(map[string]xmlrpc.Value)["id"].(string)
		info, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id})
		if err != nil {
			t.Fatalf("getInfo(%s): %v", id, err)
		}
		want, _ := store.Get(id)
		if got := info.(map[string]xmlrpc.Value)["title"]; got != want.Title {
			t.Errorf("title(%s) = %v", id, got)
		}
	}
	first := photos[0].(map[string]xmlrpc.Value)["id"].(string)
	if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": first}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchingClientSkipsGetInfo(t *testing.T) {
	med, _ := startBranching(t)
	c := xmlrpc.NewClient(med.Addr(), "/x")
	defer c.Close()
	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatal(err)
	}
	// Straight to getComments: the other branch is simply not taken.
	if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{
		"photo_id": "photo-0001",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchingRejectsUnofferedAction(t *testing.T) {
	med, _ := startBranching(t)
	c := xmlrpc.NewClient(med.Addr(), "/x")
	defer c.Close()
	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatal(err)
	}
	// addComment is not a hub alternative in this model.
	if _, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": "photo-0001", "comment_text": "x",
	}); err == nil {
		t.Error("unoffered action accepted at branch state")
	}
}

// TestBranchRejectsMixedAlternatives: a branch state whose alternatives
// are not all client invocations is a model error surfaced at runtime.
func TestBranchRejectsMixedAlternatives(t *testing.T) {
	bad := branchingMediator()
	// Add a service-side alternative at the hub.
	bad.Transitions = append(bad.Transitions, automata.MergedTransition{
		From: "hub", To: "c2", Kind: automata.KindMessage,
		Color: 2, Action: automata.Send, Message: casestudy.PicasaGetComments,
	})
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer pic.Close()
	routes, _ := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: bad,
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/x", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: pic.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()
	c := xmlrpc.NewClient(med.Addr(), "/x")
	defer c.Close()
	// The search leg completes (the broken branch state comes after it)...
	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatal(err)
	}
	// ...but the session dies when the engine reaches the malformed hub.
	if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{
		"photo_id": "photo-0001",
	}); err == nil {
		t.Error("mixed-alternative branch state accepted")
	}
}
