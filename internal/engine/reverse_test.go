package engine_test

import (
	"testing"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/rest"
	"starlink/internal/services/flickr"
	"starlink/internal/services/photostore"
)

// TestReverseMediationPicasaClientToFlickrService runs the case study in
// the opposite direction: an unmodified Picasa REST client completes
// search -> comments -> addComment against the Flickr XML-RPC service.
// The REST binder plays the server role (route matching on incoming HTTP
// requests), demonstrating the binding layer's symmetry.
func TestReverseMediationPicasaClientToFlickrService(t *testing.T) {
	store := photostore.New()
	fl, err := flickr.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.ReverseMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: restBinder},
			2: {Binder: &bind.XMLRPCBinder{Path: flickr.XMLRPCPath, Defs: casestudy.FlickrUsage().Messages},
				Target: fl.XMLRPCAddr()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	// The unmodified GData client from the rest package.
	c := rest.NewClient(med.Addr())
	defer c.Close()

	feed, err := c.Search("tree", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(feed.Entries) != 3 {
		t.Fatalf("entries = %d", len(feed.Entries))
	}
	native := store.Search("tree", 3)
	if feed.Entries[0].ID != native[0].ID || feed.Entries[0].Title != native[0].Title {
		t.Errorf("entry0 = %+v, native %+v", feed.Entries[0], native[0])
	}
	if feed.Entries[0].Author != native[0].Owner {
		t.Errorf("author = %q, want %q", feed.Entries[0].Author, native[0].Owner)
	}

	id := feed.Entries[0].ID
	comments, err := c.Comments(id)
	if err != nil {
		t.Fatal(err)
	}
	nativeComments, _ := store.Comments(id)
	if comments.Len() != len(nativeComments) {
		t.Errorf("comments = %d, want %d", comments.Len(), len(nativeComments))
	}
	if comments.Len() > 0 && comments.Entries[0].Summary != nativeComments[0].Text {
		t.Errorf("comment0 = %+v", comments.Entries[0])
	}

	added, err := c.AddComment(id, "from the picasa side")
	if err != nil {
		t.Fatal(err)
	}
	if added.ID == "" || added.Summary != "from the picasa side" {
		t.Errorf("added = %+v", added)
	}
	stored, _ := store.Comments(id)
	last := stored[len(stored)-1]
	if last.Text != "from the picasa side" || last.Author != "flickr-user" {
		t.Errorf("stored = %+v", last)
	}
}
