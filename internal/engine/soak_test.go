package engine_test

import (
	"runtime"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
)

// TestSoakManyFlowsOneSession runs many full flows over one keep-alive
// connection: the automaton restarts cleanly every time and the session
// cache stays bounded (eviction, not growth).
func TestSoakManyFlowsOneSession(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	med, store := startCaseStudy(t, casestudy.XMLRPCMediator(),
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages})
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()

	const flows = 100
	for i := 0; i < flows; i++ {
		v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
			"text": "tree", "per_page": int64(2),
		})
		if err != nil {
			t.Fatalf("flow %d search: %v", i, err)
		}
		photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
		id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
		if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
			t.Fatalf("flow %d getInfo: %v", i, err)
		}
		if _, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
			t.Fatalf("flow %d getComments: %v", i, err)
		}
		if _, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
			"photo_id": id, "comment_text": "soak",
		}); err != nil {
			t.Fatalf("flow %d addComment: %v", i, err)
		}
	}
	comments, err := store.Comments("photo-0001")
	if err != nil {
		t.Fatal(err)
	}
	if len(comments) < flows {
		t.Errorf("comments = %d, want >= %d", len(comments), flows)
	}
}

// TestNoGoroutineLeaksAcrossSessions checks the guide's no-fire-and-forget
// rule end-to-end: after serving several clients and closing everything,
// the goroutine count returns to (near) baseline.
func TestNoGoroutineLeaksAcrossSessions(t *testing.T) {
	baseline := runtime.NumGoroutine()

	med, _ := startCaseStudy(t, casestudy.XMLRPCMediator(),
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages})
	for i := 0; i < 5; i++ {
		c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
		if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
			"text": "tree", "per_page": int64(1),
		}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	med.Close()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestOneWayOperation exercises an invocation without a reply (the async
// notification pattern): the client fires an event, the mediator forwards
// it, and only the following request/response proves delivery order.
func TestOneWayOperation(t *testing.T) {
	// Model: notify (one-way, forwarded) then query (request/response).
	oneWay := &automata.Merged{
		Name: "oneway", Color1: 1, Color2: 2,
		Start: "w0", Final: []string{"w5"},
		States: []automata.MergedState{
			{Name: "w0", Colors: []int{1}},
			{Name: "w1", Colors: []int{1, 2}},
			{Name: "w2", Colors: []int{2}},
			{Name: "w3", Colors: []int{2}},
			{Name: "w4", Colors: []int{1, 2}},
			{Name: "w5", Colors: []int{1}},
		},
		Transitions: []automata.MergedTransition{
			{From: "w0", To: "w1", Kind: automata.KindMessage, Color: 1, Action: automata.Send, Message: "notify"},
			{From: "w1", To: "w2", Kind: automata.KindGamma, MTL: "w2.Msg.event = w1.Msg.event"},
			{From: "w2", To: "w3", Kind: automata.KindMessage, Color: 2, Action: automata.Send, Message: "record"},
			{From: "w3", To: "w4", Kind: automata.KindMessage, Color: 2, Action: automata.Receive, Message: "record.reply"},
			{From: "w4", To: "w5", Kind: automata.KindGamma, MTL: "w5.Msg.ok = w4.Msg.ok"},
			// The client's reply for its one-way notify: the acknowledgement
			// of the recorded event, proving the forward happened.
		},
	}
	// Make the last gamma feed a client reply.
	oneWay.Transitions = append(oneWay.Transitions, automata.MergedTransition{
		From: "w5", To: "w5x", Kind: automata.KindMessage, Color: 1, Action: automata.Receive, Message: "notify.reply",
	})
	oneWay.States = append(oneWay.States, automata.MergedState{Name: "w5x", Colors: []int{1}})
	oneWay.Final = []string{"w5x"}

	recorded := make(chan string, 1)
	srv, err := newRecordingSOAP(t, recorded)
	if err != nil {
		t.Fatal(err)
	}

	med, err := engine.New(engine.Config{
		Merged: oneWay,
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SOAPBinder{Path: "/in"}},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	c := newSOAPClient(t, med.Addr(), "/in")
	results, err := c.Call("notify", soapParam("event", "deployed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Value != "true" {
		t.Errorf("ack = %+v", results)
	}
	select {
	case ev := <-recorded:
		if ev != "deployed" {
			t.Errorf("recorded %q", ev)
		}
	default:
		t.Error("event not recorded")
	}
}

// Helpers for the one-way test.

func newRecordingSOAP(t *testing.T, recorded chan string) (string, error) {
	t.Helper()
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"record": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			for _, p := range params {
				if p.Name == "event" {
					select {
					case recorded <- p.Value:
					default:
					}
				}
			}
			return []soap.Param{{Name: "ok", Value: "true"}}, nil
		},
	})
	if err != nil {
		return "", err
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr(), nil
}

func newSOAPClient(t *testing.T, addr, path string) *soap.Client {
	t.Helper()
	c := soap.NewClient(addr, path)
	t.Cleanup(func() { c.Close() })
	return c
}

func soapParam(name, value string) soap.Param { return soap.Param{Name: name, Value: value} }
