// Latency histograms for the mediation hot path. The bins are fixed
// log-scale buckets updated with lock-free atomic adds, so observing a
// latency costs two atomic increments and never serialises concurrent
// sessions; Snapshot reads are torn-but-monotonic, which is fine for
// monitoring.
package engine

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-scale latency bins. Bucket 0 covers
// [0, 1µs); bucket i (i >= 1) covers [2^(i-1)µs, 2^i µs); the last
// bucket absorbs everything above ~18 minutes.
const histBuckets = 32

// histogram is the internal atomic form of a LatencyHistogram.
type histogram struct {
	bins  [histBuckets]atomic.Uint64
	count atomic.Uint64
	sum   atomic.Uint64 // nanoseconds
}

// histBucket maps a duration to its bin index.
func histBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLow is the inclusive lower bound of bin i.
func bucketLow(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return time.Duration(uint64(1)<<(i-1)) * time.Microsecond
}

// observe records one latency.
func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.bins[histBucket(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
}

// snapshot copies the live counters into an exported form.
func (h *histogram) snapshot() LatencyHistogram {
	out := LatencyHistogram{
		Buckets: make([]LatencyBucket, histBuckets),
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()),
	}
	for i := range h.bins {
		high := time.Duration(1<<63 - 1)
		if i < histBuckets-1 {
			high = bucketLow(i + 1)
		}
		out.Buckets[i] = LatencyBucket{
			Low:   bucketLow(i),
			High:  high,
			Count: h.bins[i].Load(),
		}
	}
	return out
}

// LatencyBucket is one bin of a latency histogram snapshot.
type LatencyBucket struct {
	// Low and High bound the bin: Low <= latency < High.
	Low, High time.Duration
	// Count is the number of observations that fell in the bin.
	Count uint64
}

// LatencyHistogram is a point-in-time copy of a latency distribution:
// fixed log-scale buckets (1µs resolution at the bottom, doubling per
// bin) plus the total observation count and latency sum.
type LatencyHistogram struct {
	// Buckets in ascending latency order.
	Buckets []LatencyBucket
	// Count is the total number of observations.
	Count uint64
	// Sum is the total observed latency.
	Sum time.Duration
}

// Mean is the average observed latency (0 with no observations).
func (l LatencyHistogram) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Sum / time.Duration(l.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <=
// 1): the upper edge of the bucket the q-th observation fell in. With no
// observations it returns 0.
func (l LatencyHistogram) Quantile(q float64) time.Duration {
	if l.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the ceil keeps e.g. Quantile(0.99) over 3 samples
	// pointing at the 3rd observation, not the 2nd.
	rank := uint64(math.Ceil(q * float64(l.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for _, b := range l.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.High
		}
	}
	return l.Buckets[len(l.Buckets)-1].High
}

// Snapshot is a consistent-enough view of a mediator's runtime metrics:
// the lifetime counters plus the latency distributions the counters
// cannot express.
type Snapshot struct {
	// Stats are the mediator's lifetime counters (Sessions, Flows,
	// pool and failure counters).
	Stats Stats
	// Transitions is the latency distribution of individual automaton
	// transitions — γ translations and message exchanges alike, one
	// observation per executed transition.
	Transitions LatencyHistogram
	// Exchanges is the latency distribution of service request/reply
	// round-trips, measured from the first request send to the reply
	// receipt; fault-recovery replays are included, so recovery shows
	// up as tail latency rather than disappearing.
	Exchanges LatencyHistogram
	// Translate is the latency distribution of γ translations alone —
	// the subset of Transitions spent executing MTL programs, compiled
	// or interpreted, isolating translation cost from network time.
	Translate LatencyHistogram
}

// Snapshot captures the mediator's counters and latency histograms.
func (m *Mediator) Snapshot() Snapshot {
	return Snapshot{
		Stats:       m.Stats(),
		Transitions: m.transitions.snapshot(),
		Exchanges:   m.exchanges.snapshot(),
		Translate:   m.translate.snapshot(),
	}
}
