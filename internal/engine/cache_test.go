package engine_test

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
)

// startCachedAddPlus wires the Fig. 7/8 Add->Plus mediator with a
// counting (and optionally slow) Plus service and the given cache
// policy. The returned counter is the number of service-side exchanges
// the SOAP server actually saw.
func startCachedAddPlus(t testing.TB, delay time.Duration, cache *engine.CachePolicy) (*engine.Mediator, *atomic.Uint64) {
	t.Helper()
	var ops atomic.Uint64
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			ops.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
			var x, y int
			for _, p := range params {
				n, _ := strconv.Atoi(p.Value)
				switch p.Name {
				case "x":
					x = n
				case "y":
					y = n
				}
			}
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
		ExchangeTimeout: 5 * time.Second,
		Cache:           cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	return med, &ops
}

// TestCacheRepeatedReads: the second identical invocation is answered
// from the cache — one service exchange, one hit, correct value both
// times — while a different argument vector misses.
func TestCacheRepeatedReads(t *testing.T) {
	med, ops := startCachedAddPlus(t, 0, &engine.CachePolicy{
		Rules: map[string]engine.CacheRule{"Plus": {TTL: time.Minute}},
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 2; i++ {
		results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
		if err != nil {
			t.Fatal(err)
		}
		if results[0].ValueString() != "42" {
			t.Errorf("call %d: Add = %s", i, results[0].ValueString())
		}
	}
	if got := ops.Load(); got != 1 {
		t.Errorf("service exchanges = %d, want 1", got)
	}
	// A different argument vector is a different key.
	results, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ValueString() != "3" {
		t.Errorf("Add(1,2) = %s", results[0].ValueString())
	}
	if got := ops.Load(); got != 2 {
		t.Errorf("service exchanges = %d, want 2", got)
	}
	st := med.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 2 || st.CacheCoalesced != 0 {
		t.Errorf("cache stats = hits %d misses %d coalesced %d, want 1/2/0",
			st.CacheHits, st.CacheMisses, st.CacheCoalesced)
	}
	// Cache-served exchanges must not count as service messages: with 3
	// flows and 2 real exchanges, MessagesOut is client replies (3) +
	// service sends (2).
	if st.Flows != 3 || st.MessagesOut != 5 {
		t.Errorf("flows = %d messagesOut = %d, want 3/5", st.Flows, st.MessagesOut)
	}
}

// TestCacheOneExchangePerTTLWindow is the coalescing race: 64 concurrent
// sessions invoke the same cacheable operation against a slow service,
// and exactly ONE service exchange happens per TTL window — the leader's.
// Everyone else is served by the cache or by joining the leader's flight.
func TestCacheOneExchangePerTTLWindow(t *testing.T) {
	const ttl = 30 * time.Second
	med, ops := startCachedAddPlus(t, 30*time.Millisecond, &engine.CachePolicy{
		Rules: map[string]engine.CacheRule{"Plus": {TTL: ttl}},
	})

	window := func() {
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := giop.Dial(med.Addr(), "calc")
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				results, err := client.Invoke("Add", giop.IntParam(7), giop.IntParam(5))
				if err != nil {
					errs <- err
					return
				}
				if results[0].ValueString() != "12" {
					errs <- errors.New("Add = " + results[0].ValueString())
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	window()
	if got := ops.Load(); got != 1 {
		t.Errorf("window 1: service exchanges = %d, want exactly 1", got)
	}
	st := med.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("window 1: misses = %d, want 1", st.CacheMisses)
	}
	if st.CacheHits+st.CacheCoalesced != 63 {
		t.Errorf("window 1: hits %d + coalesced %d = %d, want 63",
			st.CacheHits, st.CacheCoalesced, st.CacheHits+st.CacheCoalesced)
	}

	// Force the window to roll over, then repeat: exactly one more
	// exchange.
	med.CacheFlush()
	window()
	if got := ops.Load(); got != 2 {
		t.Errorf("window 2: service exchanges = %d, want exactly 2", got)
	}
	if st := med.Stats(); st.CacheMisses != 2 {
		t.Errorf("window 2: misses = %d, want 2", st.CacheMisses)
	}
}

// TestCacheTTLExpiry: after the TTL lapses the next invocation goes back
// to the service and the expiry is counted as an eviction.
func TestCacheTTLExpiry(t *testing.T) {
	med, ops := startCachedAddPlus(t, 0, &engine.CachePolicy{
		Rules: map[string]engine.CacheRule{"Plus": {TTL: 50 * time.Millisecond}},
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	call := func() {
		t.Helper()
		results, err := client.Invoke("Add", giop.IntParam(2), giop.IntParam(2))
		if err != nil {
			t.Fatal(err)
		}
		if results[0].ValueString() != "4" {
			t.Errorf("Add = %s", results[0].ValueString())
		}
	}
	call()
	call()
	if got := ops.Load(); got != 1 {
		t.Fatalf("pre-expiry exchanges = %d, want 1", got)
	}
	time.Sleep(80 * time.Millisecond)
	call()
	if got := ops.Load(); got != 2 {
		t.Errorf("post-expiry exchanges = %d, want 2", got)
	}
	if st := med.Stats(); st.CacheEvictions != 1 {
		t.Errorf("evictions = %d, want 1", st.CacheEvictions)
	}
}

// TestCacheVary: with vary restricted to x, invocations differing
// only in y share a cache entry.
func TestCacheVary(t *testing.T) {
	med, ops := startCachedAddPlus(t, 0, &engine.CachePolicy{
		Rules: map[string]engine.CacheRule{"Plus": {TTL: time.Minute, Vary: []string{"x"}}},
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ValueString() != "3" {
		t.Errorf("Add(1,2) = %s", results[0].ValueString())
	}
	// Same x, different y: the vary key ignores y, so this is a hit and
	// returns the cached 3.
	results, err = client.Invoke("Add", giop.IntParam(1), giop.IntParam(99))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ValueString() != "3" {
		t.Errorf("Add(1,99) with vary=x = %s, want cached 3", results[0].ValueString())
	}
	// Different x misses.
	if _, err := client.Invoke("Add", giop.IntParam(5), giop.IntParam(5)); err != nil {
		t.Fatal(err)
	}
	if got := ops.Load(); got != 2 {
		t.Errorf("service exchanges = %d, want 2", got)
	}
	_ = med
}

// TestCacheConfigValidation: nonsense cache policies are rejected at
// construction with ErrConfig.
func TestCacheConfigValidation(t *testing.T) {
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	base := func() engine.Config {
		return engine.Config{
			Merged: merged,
			Sides: map[int]*engine.Side{
				1: {Binder: giopBinder},
				2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: "127.0.0.1:1"},
			},
		}
	}
	cases := map[string]*engine.CachePolicy{
		"unknown operation":     {Rules: map[string]engine.CacheRule{"Nope": {TTL: time.Second}}},
		"server-side operation": {Rules: map[string]engine.CacheRule{"Add": {TTL: time.Second}}},
		"zero ttl":              {Rules: map[string]engine.CacheRule{"Plus": {}}},
		"negative entries": {
			Rules:      map[string]engine.CacheRule{"Plus": {TTL: time.Second}},
			MaxEntries: -1,
		},
		"negative shards": {
			Rules:  map[string]engine.CacheRule{"Plus": {TTL: time.Second}},
			Shards: -1,
		},
		"invalidates unknown op": {
			Rules:       map[string]engine.CacheRule{"Plus": {TTL: time.Second}},
			Invalidates: map[string][]string{"Nope": {"Plus"}},
		},
		"invalidates uncached target": {
			Rules:       map[string]engine.CacheRule{"Plus": {TTL: time.Second}},
			Invalidates: map[string][]string{"Plus": {"Other"}},
		},
	}
	for name, cache := range cases {
		cfg := base()
		cfg.Cache = cache
		if _, err := engine.New(cfg); !errors.Is(err, engine.ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", name, err)
		}
	}
	// A valid policy is accepted.
	cfg := base()
	cfg.Cache = &engine.CachePolicy{Rules: map[string]engine.CacheRule{"Plus": {TTL: time.Second}}}
	if _, err := engine.New(cfg); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}
