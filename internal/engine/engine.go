// Package engine is Starlink's automata engine (paper Section 4.2): it
// interprets a concrete merged k-colored automaton at runtime, driving the
// sequence of receiving, sending, parsing, composing and translating
// messages that realises an application-middleware mediator.
//
// Roles follow the paper's deployment (Fig. 6): the mediator acts as the
// *server* towards the color-1 application (whose requests are redirected
// to it) and as a *client* towards the color-2 application. Transitions
// keep the application perspective of the models, so on the server color
// a "!" transition means the mediator receives, and a "?" transition
// means it sends the translated reply; on the client color the actions
// read naturally.
//
// Message handles: a received message binds to the transition's To state;
// a sent message is composed (by the preceding γ translation) at the
// transition's From state. γ-transitions execute pre-compiled MTL
// programs against the session environment; the MTL cache keyword
// persists for the lifetime of a client connection, which is what the
// Fig. 10 getInfo resolution relies on.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/message"
	"starlink/internal/mtl"
	"starlink/internal/network"
)

// Errors reported by the engine.
var (
	// ErrConfig is wrapped by all configuration validation errors.
	ErrConfig = errors.New("engine: invalid configuration")
	// ErrUnexpectedAction is returned when a client performs an action the
	// automaton does not expect at the current state.
	ErrUnexpectedAction = errors.New("engine: unexpected action")
	// ErrStuck is returned when the automaton has no executable transition.
	ErrStuck = errors.New("engine: automaton stuck")
)

// Side configures one color of the mediator.
type Side struct {
	// Binder maps between concrete packets and abstract action messages.
	Binder bind.Binder
	// Net carries the color's network semantics (transport defaults tcp).
	Net network.Semantics
	// Target is the service address for client-role colors (ignored on the
	// server color).
	Target string
}

// Config assembles a mediator.
type Config struct {
	// Merged is the concrete merged automaton to interpret.
	Merged *automata.Merged
	// ServerColor is the color whose application connects *to* the
	// mediator (defaults to Merged.Color1).
	ServerColor int
	// Sides configures each color.
	Sides map[int]*Side
	// HostMap resolves logical hosts set by the MTL sethost keyword to
	// real addresses (the simulation stand-in for DNS/deployment).
	HostMap map[string]string
	// Funcs adds extra MTL functions.
	Funcs map[string]mtl.Func
	// ExchangeTimeout bounds each network exchange (default 10s).
	ExchangeTimeout time.Duration
}

// Stats are a mediator's lifetime counters.
type Stats struct {
	// Sessions is the number of client connections accepted.
	Sessions uint64
	// Flows is the number of complete automaton traversals.
	Flows uint64
	// Translations is the number of γ transitions executed.
	Translations uint64
	// MessagesIn and MessagesOut count messages received from and sent to
	// either side.
	MessagesIn, MessagesOut uint64
	// Failures is the number of sessions that ended with an error other
	// than the client disconnecting between flows.
	Failures uint64
}

// statCounters is the internal atomic form of Stats.
type statCounters struct {
	sessions, flows, translations atomic.Uint64
	messagesIn, messagesOut       atomic.Uint64
	failures                      atomic.Uint64
}

// Mediator executes merged automata, one session per accepted client
// connection.
type Mediator struct {
	cfg      Config
	programs map[int]*mtl.Program // transition index -> compiled MTL
	listener network.Listener
	stats    statCounters

	mu     sync.Mutex
	closed bool
	conns  map[network.Conn]struct{}
	wg     sync.WaitGroup
}

// Stats returns a snapshot of the mediator's counters.
func (m *Mediator) Stats() Stats {
	return Stats{
		Sessions:     m.stats.sessions.Load(),
		Flows:        m.stats.flows.Load(),
		Translations: m.stats.translations.Load(),
		MessagesIn:   m.stats.messagesIn.Load(),
		MessagesOut:  m.stats.messagesOut.Load(),
		Failures:     m.stats.failures.Load(),
	}
}

// New validates the configuration and pre-compiles all γ MTL programs.
func New(cfg Config) (*Mediator, error) {
	if cfg.Merged == nil {
		return nil, fmt.Errorf("%w: no merged automaton", ErrConfig)
	}
	if cfg.ServerColor == 0 {
		cfg.ServerColor = cfg.Merged.Color1
	}
	if cfg.ExchangeTimeout == 0 {
		cfg.ExchangeTimeout = 10 * time.Second
	}
	colors := map[int]bool{}
	for _, t := range cfg.Merged.Transitions {
		if t.Kind == automata.KindMessage {
			colors[t.Color] = true
		}
	}
	for c := range colors {
		side := cfg.Sides[c]
		if side == nil || side.Binder == nil {
			return nil, fmt.Errorf("%w: no binder for color %d", ErrConfig, c)
		}
		if c != cfg.ServerColor && side.Target == "" {
			return nil, fmt.Errorf("%w: no target address for client color %d", ErrConfig, c)
		}
	}
	if !colors[cfg.ServerColor] {
		return nil, fmt.Errorf("%w: server color %d has no transitions", ErrConfig, cfg.ServerColor)
	}
	m := &Mediator{
		cfg:      cfg,
		programs: make(map[int]*mtl.Program),
		conns:    make(map[network.Conn]struct{}),
	}
	for i, t := range cfg.Merged.Transitions {
		if t.Kind != automata.KindGamma {
			continue
		}
		prog, err := mtl.Parse(stripComments(t.MTL))
		if err != nil {
			return nil, fmt.Errorf("%w: γ %s->%s: %v", ErrConfig, t.From, t.To, err)
		}
		m.programs[i] = prog
	}
	return m, nil
}

// stripComments drops generator comment lines so auto-generated MTL with
// unresolved-field notes still compiles.
func stripComments(src string) string {
	lines := strings.Split(src, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "#") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// Start listens for client-side connections.
func (m *Mediator) Start(listenAddr string) error {
	side := m.cfg.Sides[m.cfg.ServerColor]
	var eng network.Engine
	l, err := eng.Listen(side.Net, listenAddr, side.Binder.Framer())
	if err != nil {
		return err
	}
	m.listener = l
	m.wg.Add(1)
	go m.acceptLoop()
	return nil
}

// Addr returns the client-facing address.
func (m *Mediator) Addr() string { return m.listener.Addr().String() }

func (m *Mediator) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		m.stats.sessions.Add(1)
		go func() {
			defer m.wg.Done()
			s := &session{med: m, client: conn, services: make(map[int]network.Conn)}
			s.run()
		}()
	}
}

// Close stops the mediator and waits for all sessions.
func (m *Mediator) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	var err error
	if m.listener != nil {
		err = m.listener.Close()
	}
	for c := range m.conns {
		c.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
	return err
}

func (m *Mediator) removeConn(c network.Conn) {
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
}

// session is one client connection's execution of the automaton. The
// automaton restarts after reaching a final state so a client can run the
// whole behaviour repeatedly on one connection.
type session struct {
	med      *Mediator
	client   network.Conn
	services map[int]network.Conn
	cache    mtl.Cache
	// hostOverride holds sethost retargets per color.
	hostOverride string
	// pendingAction / pendingRequest track a client request that has not
	// been answered yet, so a mediation failure can be reported as a
	// protocol-level fault instead of a dropped connection.
	pendingAction  string
	pendingRequest *message.Message
}

func (s *session) run() {
	defer func() {
		s.client.Close()
		s.med.removeConn(s.client)
		for _, c := range s.services {
			c.Close()
		}
	}()
	for {
		s.pendingAction, s.pendingRequest = "", nil
		if err := s.runAutomaton(); err != nil {
			// A recv error on the very first transition of a flow is the
			// client ending the keep-alive connection, not a failure.
			if !errors.Is(err, errSessionDone) {
				s.med.stats.failures.Add(1)
				s.sendErrorReply(err)
			}
			return
		}
		s.med.stats.flows.Add(1)
	}
}

// errSessionDone marks the clean end of a session (client disconnected
// between flows).
var errSessionDone = errors.New("engine: session done")

// sendErrorReply reports a mediation failure to a client that is still
// waiting for an answer, if the client-side binder can build faults.
func (s *session) sendErrorReply(cause error) {
	if s.pendingAction == "" {
		return
	}
	side := s.med.cfg.Sides[s.med.cfg.ServerColor]
	replier, ok := side.Binder.(bind.ErrorReplier)
	if !ok {
		return
	}
	data, err := replier.BuildErrorReply(s.pendingAction, s.pendingRequest, cause.Error())
	if err != nil {
		return
	}
	if err := s.client.SetDeadline(time.Now().Add(s.med.cfg.ExchangeTimeout)); err != nil {
		return
	}
	if s.client.Send(data) == nil {
		s.med.stats.messagesOut.Add(1)
	}
}

// runAutomaton executes one start-to-final traversal.
func (s *session) runAutomaton() error {
	merged := s.med.cfg.Merged
	env := mtl.NewEnv(&s.cache)
	env.Funcs = s.med.cfg.Funcs
	for _, st := range merged.States {
		env.Bind(st.Name, message.New(""))
	}
	state := merged.Start
	lastClientAction := ""
	var lastClientRequest *message.Message
	lastServiceAction := map[int]string{}

	for !merged.IsFinal(state) {
		outs := merged.Out(state)
		if len(outs) == 0 {
			return fmt.Errorf("%w: state %s has no outgoing transitions", ErrStuck, state)
		}
		if len(outs) > 1 {
			// Branch state: the client application chooses the next
			// operation. All alternatives must be client-side invocations;
			// the received action selects the branch.
			next, err := s.execBranch(outs, env, &lastClientAction, &lastClientRequest)
			if err != nil {
				return err
			}
			state = next
			continue
		}
		t, idx := outs[0], transitionIndex(merged, state, 0)
		switch t.Kind {
		case automata.KindGamma:
			env.Host = ""
			if prog := s.med.programs[idx]; prog != nil {
				if err := prog.Exec(env); err != nil {
					return fmt.Errorf("γ %s->%s: %w", t.From, t.To, err)
				}
				s.med.stats.translations.Add(1)
			}
			if env.Host != "" {
				s.hostOverride = env.Host
			}
		case automata.KindMessage:
			if err := s.execMessage(t, env, &lastClientAction, &lastClientRequest, lastServiceAction); err != nil {
				return err
			}
		}
		state = t.To
	}
	return nil
}

// execBranch receives the client's next request at a branch state and
// follows the alternative carrying that action. Every alternative must be
// a server-color Send transition (the models express "the client decides
// what to do next" only on its own invocations).
func (s *session) execBranch(
	outs []automata.MergedTransition,
	env *mtl.Env,
	lastClientAction *string,
	lastClientRequest **message.Message,
) (string, error) {
	cfg := s.med.cfg
	for _, t := range outs {
		if t.Kind != automata.KindMessage || t.Color != cfg.ServerColor || t.Action != automata.Send {
			return "", fmt.Errorf("%w: branch state %s mixes non-client-invocation alternatives",
				ErrStuck, t.From)
		}
	}
	side := cfg.Sides[cfg.ServerColor]
	if err := s.client.SetDeadline(time.Time{}); err != nil {
		return "", err
	}
	data, err := s.client.Recv()
	if err != nil {
		return "", fmt.Errorf("%w: %v", errSessionDone, err)
	}
	s.med.stats.messagesIn.Add(1)
	action, abs, err := side.Binder.ParseRequest(data)
	if err != nil {
		return "", fmt.Errorf("parse client request: %w", err)
	}
	s.pendingAction, s.pendingRequest = action, abs
	for _, t := range outs {
		if t.Message != action {
			continue
		}
		*lastClientAction = action
		*lastClientRequest = abs
		env.Bind(t.To, abs)
		return t.To, nil
	}
	return "", fmt.Errorf("%w: got %q, automaton offers %s at %s",
		ErrUnexpectedAction, action, branchNames(outs), outs[0].From)
}

func branchNames(outs []automata.MergedTransition) string {
	names := make([]string, len(outs))
	for i, t := range outs {
		names[i] = t.Message
	}
	return strings.Join(names, "|")
}

func transitionIndex(m *automata.Merged, state string, nth int) int {
	seen := 0
	for i, t := range m.Transitions {
		if t.From == state {
			if seen == nth {
				return i
			}
			seen++
		}
	}
	return -1
}

func (s *session) execMessage(
	t automata.MergedTransition,
	env *mtl.Env,
	lastClientAction *string,
	lastClientRequest **message.Message,
	lastServiceAction map[int]string,
) error {
	cfg := s.med.cfg
	side := cfg.Sides[t.Color]
	serverSide := t.Color == cfg.ServerColor
	switch {
	case serverSide && t.Action == automata.Send:
		// Client invokes: mediator receives the request.
		if err := s.client.SetDeadline(time.Time{}); err != nil {
			return err
		}
		data, err := s.client.Recv()
		if err != nil {
			return fmt.Errorf("%w: %v", errSessionDone, err) // client gone
		}
		s.med.stats.messagesIn.Add(1)
		action, abs, err := side.Binder.ParseRequest(data)
		if err != nil {
			return fmt.Errorf("parse client request: %w", err)
		}
		// Record the pending request before validating it, so even an
		// unexpected action is answered with a fault.
		s.pendingAction, s.pendingRequest = action, abs
		if action != t.Message {
			return fmt.Errorf("%w: got %q, automaton expects %q at %s",
				ErrUnexpectedAction, action, t.Message, t.From)
		}
		*lastClientAction = action
		*lastClientRequest = abs
		env.Bind(t.To, abs)
	case serverSide && t.Action == automata.Receive:
		// Client receives: mediator sends the translated reply.
		abs := env.Message(t.From)
		if abs == nil {
			abs = message.New(t.Message)
		}
		abs.Name = t.Message
		copyCorrelationFields(*lastClientRequest, abs)
		data, err := side.Binder.BuildReply(*lastClientAction, abs)
		if err != nil {
			return fmt.Errorf("build client reply: %w", err)
		}
		if err := s.client.SetDeadline(time.Now().Add(cfg.ExchangeTimeout)); err != nil {
			return err
		}
		if err := s.client.Send(data); err != nil {
			return fmt.Errorf("send client reply: %w", err)
		}
		s.med.stats.messagesOut.Add(1)
		s.pendingAction, s.pendingRequest = "", nil
	case t.Action == automata.Send:
		// Mediator invokes the service.
		abs := env.Message(t.From)
		if abs == nil {
			abs = message.New(t.Message)
		}
		abs.Name = t.Message
		data, err := side.Binder.BuildRequest(t.Message, abs)
		if err != nil {
			return fmt.Errorf("build service request: %w", err)
		}
		conn, err := s.serviceConn(t.Color)
		if err != nil {
			return err
		}
		if err := conn.SetDeadline(time.Now().Add(cfg.ExchangeTimeout)); err != nil {
			return err
		}
		if err := conn.Send(data); err != nil {
			return fmt.Errorf("send service request: %w", err)
		}
		s.med.stats.messagesOut.Add(1)
		lastServiceAction[t.Color] = t.Message
	default:
		// Mediator receives the service reply.
		conn, err := s.serviceConn(t.Color)
		if err != nil {
			return err
		}
		if err := conn.SetDeadline(time.Now().Add(cfg.ExchangeTimeout)); err != nil {
			return err
		}
		data, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("recv service reply: %w", err)
		}
		s.med.stats.messagesIn.Add(1)
		abs, err := side.Binder.ParseReply(lastServiceAction[t.Color], data)
		if err != nil {
			return fmt.Errorf("parse service reply: %w", err)
		}
		abs.Name = t.Message
		env.Bind(t.To, abs)
	}
	return nil
}

// copyCorrelationFields carries binder-internal fields (labels starting
// with "_", e.g. the GIOP request id) from the request into the reply.
func copyCorrelationFields(req, reply *message.Message) {
	if req == nil || reply == nil {
		return
	}
	for _, f := range req.Fields {
		if strings.HasPrefix(f.Label, "_") && reply.Field(f.Label) == nil {
			reply.Add(f.Clone())
		}
	}
}

// serviceConn returns (dialling lazily) the connection towards a
// client-role color, honouring sethost retargets via the host map.
func (s *session) serviceConn(color int) (network.Conn, error) {
	if c, ok := s.services[color]; ok {
		return c, nil
	}
	side := s.med.cfg.Sides[color]
	addr := side.Target
	if s.hostOverride != "" {
		if mapped, ok := s.med.cfg.HostMap[s.hostOverride]; ok {
			addr = mapped
		}
	}
	var eng network.Engine
	conn, err := eng.Dial(side.Net, addr, side.Binder.Framer())
	if err != nil {
		return nil, fmt.Errorf("dial service (color %d, %s): %w", color, addr, err)
	}
	s.services[color] = conn
	return conn, nil
}
