// Package engine is Starlink's automata engine (paper Section 4.2): it
// interprets a concrete merged k-colored automaton at runtime, driving the
// sequence of receiving, sending, parsing, composing and translating
// messages that realises an application-middleware mediator.
//
// Roles follow the paper's deployment (Fig. 6): the mediator acts as the
// *server* towards the color-1 application (whose requests are redirected
// to it) and as a *client* towards the color-2 application. Transitions
// keep the application perspective of the models, so on the server color
// a "!" transition means the mediator receives, and a "?" transition
// means it sends the translated reply; on the client color the actions
// read naturally.
//
// Message handles: a received message binds to the transition's To state;
// a sent message is composed (by the preceding γ translation) at the
// transition's From state. γ-transitions execute pre-compiled MTL
// programs against the session environment; the MTL cache keyword
// persists for the lifetime of a client connection, which is what the
// Fig. 10 getInfo resolution relies on.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/message"
	"starlink/internal/mtl"
	"starlink/internal/network"
)

// Errors reported by the engine.
var (
	// ErrConfig is wrapped by all configuration validation errors.
	ErrConfig = errors.New("engine: invalid configuration")
	// ErrUnexpectedAction is returned when a client performs an action the
	// automaton does not expect at the current state.
	ErrUnexpectedAction = errors.New("engine: unexpected action")
	// ErrStuck is returned when the automaton has no executable transition.
	ErrStuck = errors.New("engine: automaton stuck")
)

// Side configures one color of the mediator.
type Side struct {
	// Binder maps between concrete packets and abstract action messages.
	Binder bind.Binder
	// Net carries the color's network semantics (transport defaults tcp).
	Net network.Semantics
	// Target is the service address for client-role colors (ignored on the
	// server color).
	Target string
	// Dialer optionally overrides how service connections are opened for
	// this side; tests use it to inject faulty transports. Defaults to
	// the network engine with the configured dial timeout.
	Dialer func(sem network.Semantics, addr string, framer network.Framer) (network.Conn, error)
}

// Config assembles a mediator.
type Config struct {
	// Merged is the concrete merged automaton to interpret.
	Merged *automata.Merged
	// ServerColor is the color whose application connects *to* the
	// mediator (defaults to Merged.Color1).
	ServerColor int
	// Sides configures each color.
	Sides map[int]*Side
	// HostMap resolves logical hosts set by the MTL sethost keyword to
	// real addresses (the simulation stand-in for DNS/deployment).
	HostMap map[string]string
	// Funcs adds extra MTL functions.
	Funcs map[string]mtl.Func
	// ExchangeTimeout bounds each network exchange (default 10s).
	ExchangeTimeout time.Duration
	// DialRetries is how many times a failed service-side exchange is
	// retried on a fresh connection before the session fails: 0 means the
	// default (2), a negative value disables retries.
	DialRetries int
	// RetryBackoff is slept before the first retry and doubles with each
	// further attempt: 0 means the default (50ms), a negative value
	// disables the sleep.
	RetryBackoff time.Duration
	// DialTimeout bounds each service dial (default
	// network.DefaultDialTimeout).
	DialTimeout time.Duration
	// Trace, when non-nil, receives one event per observable mediation
	// step (state entered, transition fired, redial, session error). It
	// is called synchronously from session goroutines and must be fast
	// and concurrency-safe.
	Trace func(TraceEvent)
}

// DefaultDialRetries and DefaultRetryBackoff are the fault-recovery
// defaults applied when Config leaves the knobs zero.
const (
	DefaultDialRetries  = 2
	DefaultRetryBackoff = 50 * time.Millisecond
)

// TraceKind classifies TraceEvents.
type TraceKind int

// Trace event kinds.
const (
	// TraceState fires when a session's automaton enters a state.
	TraceState TraceKind = iota
	// TraceTransition fires after a transition executes.
	TraceTransition
	// TraceRedial fires when a service connection is replaced (fault
	// recovery or a sethost retarget after the first dial).
	TraceRedial
	// TraceError fires when a session ends with an error.
	TraceError
)

// String names the kind for logs.
func (k TraceKind) String() string {
	switch k {
	case TraceState:
		return "state"
	case TraceTransition:
		return "transition"
	case TraceRedial:
		return "redial"
	case TraceError:
		return "error"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observable step of a mediation session, delivered to
// the Config.Trace hook.
type TraceEvent struct {
	// Session numbers the client connection (1-based, in accept order).
	Session uint64
	// Kind selects which fields below are meaningful.
	Kind TraceKind
	// State is the state entered (TraceState) or the transition's target
	// (TraceTransition).
	State string
	// Transition is "from->to" for TraceTransition.
	Transition string
	// Color is the side a message transition or redial concerns.
	Color int
	// Attempt is the retry attempt for TraceRedial (0 for a sethost
	// retarget).
	Attempt int
	// Err carries the cause for TraceError and fault-driven TraceRedial.
	Err error
}

// Stats are a mediator's lifetime counters.
type Stats struct {
	// Sessions is the number of client connections accepted.
	Sessions uint64
	// Flows is the number of complete automaton traversals.
	Flows uint64
	// Translations is the number of γ transitions executed.
	Translations uint64
	// MessagesIn and MessagesOut count messages received from and sent to
	// either side.
	MessagesIn, MessagesOut uint64
	// Failures is the number of sessions that ended with an error other
	// than the client disconnecting between flows.
	Failures uint64
	// Redials counts service connections that were replaced during a
	// session — after a transport fault or a sethost retarget.
	Redials uint64
	// RetriesExhausted counts service exchanges that still failed after
	// every configured retry.
	RetriesExhausted uint64
	// ClientFailures counts failed exchanges with the client application
	// (unparseable requests, unexpected actions, reply send errors).
	ClientFailures uint64
	// ServiceFailures counts service-side exchanges that failed for good
	// (retries exhausted, protocol errors, unparseable replies).
	ServiceFailures uint64
}

// statCounters is the internal atomic form of Stats.
type statCounters struct {
	sessions, flows, translations   atomic.Uint64
	messagesIn, messagesOut         atomic.Uint64
	failures                        atomic.Uint64
	redials, retriesExhausted       atomic.Uint64
	clientFailures, serviceFailures atomic.Uint64
}

// Mediator executes merged automata, one session per accepted client
// connection.
type Mediator struct {
	cfg      Config
	programs map[int]*mtl.Program // transition index -> compiled MTL
	outs     map[string]outgoing  // state -> outgoing transitions, precomputed
	listener network.Listener
	stats    statCounters

	mu     sync.Mutex
	closed bool
	conns  map[network.Conn]struct{}
	wg     sync.WaitGroup
}

// Stats returns a snapshot of the mediator's counters.
func (m *Mediator) Stats() Stats {
	return Stats{
		Sessions:         m.stats.sessions.Load(),
		Flows:            m.stats.flows.Load(),
		Translations:     m.stats.translations.Load(),
		MessagesIn:       m.stats.messagesIn.Load(),
		MessagesOut:      m.stats.messagesOut.Load(),
		Failures:         m.stats.failures.Load(),
		Redials:          m.stats.redials.Load(),
		RetriesExhausted: m.stats.retriesExhausted.Load(),
		ClientFailures:   m.stats.clientFailures.Load(),
		ServiceFailures:  m.stats.serviceFailures.Load(),
	}
}

// New validates the configuration and pre-compiles all γ MTL programs.
func New(cfg Config) (*Mediator, error) {
	if cfg.Merged == nil {
		return nil, fmt.Errorf("%w: no merged automaton", ErrConfig)
	}
	if cfg.ServerColor == 0 {
		cfg.ServerColor = cfg.Merged.Color1
	}
	if cfg.ExchangeTimeout == 0 {
		cfg.ExchangeTimeout = 10 * time.Second
	}
	switch {
	case cfg.DialRetries == 0:
		cfg.DialRetries = DefaultDialRetries
	case cfg.DialRetries < 0:
		cfg.DialRetries = 0
	}
	switch {
	case cfg.RetryBackoff == 0:
		cfg.RetryBackoff = DefaultRetryBackoff
	case cfg.RetryBackoff < 0:
		cfg.RetryBackoff = 0
	}
	colors := map[int]bool{}
	for _, t := range cfg.Merged.Transitions {
		if t.Kind == automata.KindMessage {
			colors[t.Color] = true
		}
	}
	for c := range colors {
		side := cfg.Sides[c]
		if side == nil || side.Binder == nil {
			return nil, fmt.Errorf("%w: no binder for color %d", ErrConfig, c)
		}
		if c != cfg.ServerColor && side.Target == "" {
			return nil, fmt.Errorf("%w: no target address for client color %d", ErrConfig, c)
		}
	}
	if !colors[cfg.ServerColor] {
		return nil, fmt.Errorf("%w: server color %d has no transitions", ErrConfig, cfg.ServerColor)
	}
	m := &Mediator{
		cfg:      cfg,
		programs: make(map[int]*mtl.Program),
		outs:     make(map[string]outgoing),
		conns:    make(map[network.Conn]struct{}),
	}
	for i, t := range cfg.Merged.Transitions {
		o := m.outs[t.From]
		o.ts = append(o.ts, t)
		o.idx = append(o.idx, i)
		m.outs[t.From] = o
		if t.Kind != automata.KindGamma {
			continue
		}
		prog, err := mtl.Parse(stripComments(t.MTL))
		if err != nil {
			return nil, fmt.Errorf("%w: γ %s->%s: %v", ErrConfig, t.From, t.To, err)
		}
		m.programs[i] = prog
	}
	return m, nil
}

// outgoing is a state's outgoing transitions with their global indices,
// precomputed in New so each automaton step is O(1) instead of a rescan
// of the whole transition list.
type outgoing struct {
	ts  []automata.MergedTransition
	idx []int
}

// stripComments drops generator comment lines so auto-generated MTL with
// unresolved-field notes still compiles.
func stripComments(src string) string {
	lines := strings.Split(src, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "#") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// Start listens for client-side connections.
func (m *Mediator) Start(listenAddr string) error {
	side := m.cfg.Sides[m.cfg.ServerColor]
	var eng network.Engine
	l, err := eng.Listen(side.Net, listenAddr, side.Binder.Framer())
	if err != nil {
		return err
	}
	m.listener = l
	m.wg.Add(1)
	go m.acceptLoop()
	return nil
}

// Addr returns the client-facing address.
func (m *Mediator) Addr() string { return m.listener.Addr().String() }

func (m *Mediator) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		id := m.stats.sessions.Add(1)
		go func() {
			defer m.wg.Done()
			s := &session{
				med:      m,
				id:       id,
				client:   conn,
				services: make(map[int]*serviceLink),
				lastWire: make(map[int][]byte),
				dialed:   make(map[int]struct{}),
			}
			s.run()
		}()
	}
}

// Close stops the mediator and waits for all sessions.
func (m *Mediator) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	var err error
	if m.listener != nil {
		err = m.listener.Close()
	}
	for c := range m.conns {
		c.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
	return err
}

func (m *Mediator) removeConn(c network.Conn) {
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
}

// session is one client connection's execution of the automaton. The
// automaton restarts after reaching a final state so a client can run the
// whole behaviour repeatedly on one connection.
type session struct {
	med      *Mediator
	id       uint64
	client   network.Conn
	services map[int]*serviceLink
	cache    mtl.Cache
	// lastWire keeps the last request sent to each service color so a
	// reply lost to a transport fault can be replayed on a fresh
	// connection.
	lastWire map[int][]byte
	// dialed marks colors that have been dialled at least once, so a
	// replacement dial can be counted as a redial.
	dialed map[int]struct{}
	// hostOverride holds the current flow's sethost retarget; it is
	// cleared when the automaton restarts so one traversal's retarget
	// cannot leak into the next.
	hostOverride string
	// pendingAction / pendingRequest track a client request that has not
	// been answered yet, so a mediation failure can be reported as a
	// protocol-level fault instead of a dropped connection.
	pendingAction  string
	pendingRequest *message.Message
}

// serviceLink is a cached service-side connection together with the
// address it was dialled to, so a later sethost retarget is detected
// instead of silently ignored.
type serviceLink struct {
	conn network.Conn
	addr string
}

// trace delivers ev to the configured hook, stamping the session id.
func (s *session) trace(ev TraceEvent) {
	if s.med.cfg.Trace != nil {
		ev.Session = s.id
		s.med.cfg.Trace(ev)
	}
}

func (s *session) run() {
	defer func() {
		s.client.Close()
		s.med.removeConn(s.client)
		for _, link := range s.services {
			link.conn.Close()
		}
	}()
	for {
		s.pendingAction, s.pendingRequest = "", nil
		s.hostOverride = ""
		if err := s.runAutomaton(); err != nil {
			// A recv error on the very first transition of a flow is the
			// client ending the keep-alive connection, not a failure.
			if !errors.Is(err, errSessionDone) {
				s.med.stats.failures.Add(1)
				s.trace(TraceEvent{Kind: TraceError, Err: err})
				s.sendErrorReply(err)
			}
			return
		}
		s.med.stats.flows.Add(1)
	}
}

// errSessionDone marks the clean end of a session (client disconnected
// between flows).
var errSessionDone = errors.New("engine: session done")

// sendErrorReply reports a mediation failure to a client that is still
// waiting for an answer, if the client-side binder can build faults.
func (s *session) sendErrorReply(cause error) {
	if s.pendingAction == "" {
		return
	}
	side := s.med.cfg.Sides[s.med.cfg.ServerColor]
	replier, ok := side.Binder.(bind.ErrorReplier)
	if !ok {
		return
	}
	data, err := replier.BuildErrorReply(s.pendingAction, s.pendingRequest, cause.Error())
	if err != nil {
		return
	}
	if err := s.client.SetDeadline(time.Now().Add(s.med.cfg.ExchangeTimeout)); err != nil {
		return
	}
	if s.client.Send(data) == nil {
		s.med.stats.messagesOut.Add(1)
	}
}

// runAutomaton executes one start-to-final traversal.
func (s *session) runAutomaton() error {
	merged := s.med.cfg.Merged
	env := mtl.NewEnv(&s.cache)
	env.Funcs = s.med.cfg.Funcs
	for _, st := range merged.States {
		env.Bind(st.Name, message.New(""))
	}
	state := merged.Start
	lastClientAction := ""
	var lastClientRequest *message.Message
	lastServiceAction := map[int]string{}

	s.trace(TraceEvent{Kind: TraceState, State: state})
	for !merged.IsFinal(state) {
		out := s.med.outs[state]
		if len(out.ts) == 0 {
			return fmt.Errorf("%w: state %s has no outgoing transitions", ErrStuck, state)
		}
		if len(out.ts) > 1 {
			// Branch state: the client application chooses the next
			// operation. All alternatives must be client-side invocations;
			// the received action selects the branch.
			next, err := s.execBranch(out.ts, env, &lastClientAction, &lastClientRequest)
			if err != nil {
				return err
			}
			state = next
			s.trace(TraceEvent{Kind: TraceState, State: state})
			continue
		}
		t, idx := out.ts[0], out.idx[0]
		switch t.Kind {
		case automata.KindGamma:
			env.Host = ""
			prog, ok := s.med.programs[idx]
			if !ok {
				// Defensive: every γ transition gets a compiled program in
				// New; a miss means the automaton changed under us, and
				// skipping the translation would corrupt the flow.
				return fmt.Errorf("%w: no compiled γ program for %s->%s", ErrStuck, t.From, t.To)
			}
			if err := prog.Exec(env); err != nil {
				return fmt.Errorf("γ %s->%s: %w", t.From, t.To, err)
			}
			s.med.stats.translations.Add(1)
			if env.Host != "" {
				s.hostOverride = env.Host
			}
		case automata.KindMessage:
			if err := s.execMessage(t, env, &lastClientAction, &lastClientRequest, lastServiceAction); err != nil {
				return err
			}
		}
		s.trace(TraceEvent{Kind: TraceTransition, State: t.To, Transition: t.From + "->" + t.To, Color: t.Color})
		state = t.To
		s.trace(TraceEvent{Kind: TraceState, State: state})
	}
	return nil
}

// execBranch receives the client's next request at a branch state and
// follows the alternative carrying that action. Every alternative must be
// a server-color Send transition (the models express "the client decides
// what to do next" only on its own invocations).
func (s *session) execBranch(
	outs []automata.MergedTransition,
	env *mtl.Env,
	lastClientAction *string,
	lastClientRequest **message.Message,
) (string, error) {
	cfg := s.med.cfg
	for _, t := range outs {
		if t.Kind != automata.KindMessage || t.Color != cfg.ServerColor || t.Action != automata.Send {
			return "", fmt.Errorf("%w: branch state %s mixes non-client-invocation alternatives",
				ErrStuck, t.From)
		}
	}
	side := cfg.Sides[cfg.ServerColor]
	if err := s.client.SetDeadline(time.Time{}); err != nil {
		return "", err
	}
	data, err := s.client.Recv()
	if err != nil {
		return "", fmt.Errorf("%w: %v", errSessionDone, err)
	}
	s.med.stats.messagesIn.Add(1)
	action, abs, err := side.Binder.ParseRequest(data)
	if err != nil {
		s.med.stats.clientFailures.Add(1)
		return "", fmt.Errorf("parse client request: %w", err)
	}
	s.pendingAction, s.pendingRequest = action, abs
	for _, t := range outs {
		if t.Message != action {
			continue
		}
		*lastClientAction = action
		*lastClientRequest = abs
		env.Bind(t.To, abs)
		return t.To, nil
	}
	s.med.stats.clientFailures.Add(1)
	return "", fmt.Errorf("%w: got %q, automaton offers %s at %s",
		ErrUnexpectedAction, action, branchNames(outs), outs[0].From)
}

func branchNames(outs []automata.MergedTransition) string {
	names := make([]string, len(outs))
	for i, t := range outs {
		names[i] = t.Message
	}
	return strings.Join(names, "|")
}

func (s *session) execMessage(
	t automata.MergedTransition,
	env *mtl.Env,
	lastClientAction *string,
	lastClientRequest **message.Message,
	lastServiceAction map[int]string,
) error {
	cfg := s.med.cfg
	side := cfg.Sides[t.Color]
	serverSide := t.Color == cfg.ServerColor
	switch {
	case serverSide && t.Action == automata.Send:
		// Client invokes: mediator receives the request.
		if err := s.client.SetDeadline(time.Time{}); err != nil {
			return err
		}
		data, err := s.client.Recv()
		if err != nil {
			return fmt.Errorf("%w: %v", errSessionDone, err) // client gone
		}
		s.med.stats.messagesIn.Add(1)
		action, abs, err := side.Binder.ParseRequest(data)
		if err != nil {
			s.med.stats.clientFailures.Add(1)
			return fmt.Errorf("parse client request: %w", err)
		}
		// Record the pending request before validating it, so even an
		// unexpected action is answered with a fault.
		s.pendingAction, s.pendingRequest = action, abs
		if action != t.Message {
			s.med.stats.clientFailures.Add(1)
			return fmt.Errorf("%w: got %q, automaton expects %q at %s",
				ErrUnexpectedAction, action, t.Message, t.From)
		}
		*lastClientAction = action
		*lastClientRequest = abs
		env.Bind(t.To, abs)
	case serverSide && t.Action == automata.Receive:
		// Client receives: mediator sends the translated reply.
		abs := env.Message(t.From)
		if abs == nil {
			abs = message.New(t.Message)
		}
		abs.Name = t.Message
		copyCorrelationFields(*lastClientRequest, abs)
		data, err := side.Binder.BuildReply(*lastClientAction, abs)
		if err != nil {
			return fmt.Errorf("build client reply: %w", err)
		}
		if err := s.client.SetDeadline(time.Now().Add(cfg.ExchangeTimeout)); err != nil {
			return err
		}
		if err := s.client.Send(data); err != nil {
			s.med.stats.clientFailures.Add(1)
			return fmt.Errorf("send client reply: %w", err)
		}
		s.med.stats.messagesOut.Add(1)
		s.pendingAction, s.pendingRequest = "", nil
	case t.Action == automata.Send:
		// Mediator invokes the service.
		abs := env.Message(t.From)
		if abs == nil {
			abs = message.New(t.Message)
		}
		abs.Name = t.Message
		data, err := side.Binder.BuildRequest(t.Message, abs)
		if err != nil {
			return fmt.Errorf("build service request: %w", err)
		}
		if err := s.serviceSend(t.Color, data); err != nil {
			return err
		}
		s.med.stats.messagesOut.Add(1)
		lastServiceAction[t.Color] = t.Message
	default:
		// Mediator receives the service reply.
		data, err := s.serviceRecv(t.Color)
		if err != nil {
			return err
		}
		s.med.stats.messagesIn.Add(1)
		abs, err := side.Binder.ParseReply(lastServiceAction[t.Color], data)
		if err != nil {
			s.med.stats.serviceFailures.Add(1)
			return fmt.Errorf("parse service reply: %w", err)
		}
		abs.Name = t.Message
		env.Bind(t.To, abs)
	}
	return nil
}

// serviceSend delivers a composed request to a service color, retrying
// on a fresh connection when the cached one turns out to be broken. The
// wire bytes are remembered so a later lost reply can replay them.
func (s *session) serviceSend(color int, data []byte) error {
	cfg := s.med.cfg
	var lastErr error
	for attempt := 0; ; attempt++ {
		link, err := s.serviceConn(color, attempt)
		if err == nil {
			if err = link.conn.SetDeadline(time.Now().Add(cfg.ExchangeTimeout)); err == nil {
				err = link.conn.Send(data)
			}
			if err == nil {
				s.lastWire[color] = data
				return nil
			}
			if !network.IsTransportError(err) {
				s.med.stats.serviceFailures.Add(1)
				return fmt.Errorf("send service request: %w", err)
			}
			s.evictService(color)
		}
		lastErr = err
		if attempt >= cfg.DialRetries {
			s.med.stats.retriesExhausted.Add(1)
			s.med.stats.serviceFailures.Add(1)
			return fmt.Errorf("send service request (color %d): retries exhausted: %w", color, lastErr)
		}
		s.backoff(attempt)
	}
}

// serviceRecv reads a service reply, recovering from transport faults by
// redialling and replaying the in-flight request on the new connection.
func (s *session) serviceRecv(color int) ([]byte, error) {
	cfg := s.med.cfg
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, err := s.tryServiceRecv(color, attempt)
		if err == nil {
			return data, nil
		}
		if !network.IsTransportError(err) {
			s.med.stats.serviceFailures.Add(1)
			return nil, fmt.Errorf("recv service reply: %w", err)
		}
		s.evictService(color)
		lastErr = err
		if attempt >= cfg.DialRetries || s.lastWire[color] == nil {
			// Nothing to replay means retrying cannot produce the reply.
			s.med.stats.retriesExhausted.Add(1)
			s.med.stats.serviceFailures.Add(1)
			return nil, fmt.Errorf("recv service reply (color %d): retries exhausted: %w", color, lastErr)
		}
		s.backoff(attempt)
	}
}

// tryServiceRecv performs one receive attempt; on a retry (attempt > 0)
// it first replays the remembered request so the fresh connection has
// something to answer.
func (s *session) tryServiceRecv(color, attempt int) ([]byte, error) {
	link, err := s.serviceConn(color, attempt)
	if err != nil {
		return nil, err
	}
	if err := link.conn.SetDeadline(time.Now().Add(s.med.cfg.ExchangeTimeout)); err != nil {
		return nil, err
	}
	if attempt > 0 {
		if err := link.conn.Send(s.lastWire[color]); err != nil {
			return nil, err
		}
	}
	return link.conn.Recv()
}

// backoff sleeps before retry attempt+1, doubling the configured base
// each attempt.
func (s *session) backoff(attempt int) {
	if d := s.med.cfg.RetryBackoff << uint(attempt); d > 0 {
		time.Sleep(d)
	}
}

// evictService closes and forgets a broken service connection so the
// next exchange redials instead of inheriting the fault.
func (s *session) evictService(color int) {
	if link, ok := s.services[color]; ok {
		link.conn.Close()
		delete(s.services, color)
	}
}

// copyCorrelationFields carries binder-internal fields (labels starting
// with "_", e.g. the GIOP request id) from the request into the reply.
func copyCorrelationFields(req, reply *message.Message) {
	if req == nil || reply == nil {
		return
	}
	for _, f := range req.Fields {
		if strings.HasPrefix(f.Label, "_") && reply.Field(f.Label) == nil {
			reply.Add(f.Clone())
		}
	}
}

// serviceAddr resolves the current target address of a client-role
// color, honouring the flow's sethost retarget via the host map.
func (s *session) serviceAddr(color int) string {
	addr := s.med.cfg.Sides[color].Target
	if s.hostOverride != "" {
		if mapped, ok := s.med.cfg.HostMap[s.hostOverride]; ok {
			addr = mapped
		}
	}
	return addr
}

// serviceConn returns (dialling lazily) the connection towards a
// client-role color. A cached connection is reused only while it still
// points at the address the flow wants: a sethost retarget that fires
// after the first dial evicts it, as does a transport fault (via
// evictService). Replacement dials are counted as Redials; attempt > 0
// marks a fault-recovery redial in the trace.
func (s *session) serviceConn(color, attempt int) (*serviceLink, error) {
	addr := s.serviceAddr(color)
	if link, ok := s.services[color]; ok {
		if link.addr == addr {
			return link, nil
		}
		// Retargeted after caching: the old connection is no longer the
		// one the automaton wants to talk to.
		link.conn.Close()
		delete(s.services, color)
	}
	side := s.med.cfg.Sides[color]
	dial := side.Dialer
	if dial == nil {
		dial = network.Engine{DialTimeout: s.med.cfg.DialTimeout}.Dial
	}
	conn, err := dial(side.Net, addr, side.Binder.Framer())
	if err != nil {
		return nil, fmt.Errorf("dial service (color %d, %s): %w", color, addr, err)
	}
	link := &serviceLink{conn: conn, addr: addr}
	if _, redialed := s.dialed[color]; redialed {
		s.med.stats.redials.Add(1)
		s.trace(TraceEvent{Kind: TraceRedial, Color: color, State: addr, Attempt: attempt})
	} else {
		s.dialed[color] = struct{}{}
	}
	s.services[color] = link
	return link, nil
}
