// Package engine is Starlink's automata engine (paper Section 4.2): it
// interprets a concrete merged k-colored automaton at runtime, driving the
// sequence of receiving, sending, parsing, composing and translating
// messages that realises an application-middleware mediator.
//
// Roles follow the paper's deployment (Fig. 6): the mediator acts as the
// *server* towards the color-1 application (whose requests are redirected
// to it) and as a *client* towards the color-2 application. Transitions
// keep the application perspective of the models, so on the server color
// a "!" transition means the mediator receives, and a "?" transition
// means it sends the translated reply; on the client color the actions
// read naturally.
//
// Message handles: a received message binds to the transition's To state;
// a sent message is composed (by the preceding γ translation) at the
// transition's From state. γ-transitions execute pre-compiled MTL
// programs against the session environment; the MTL cache keyword
// persists for the lifetime of a client connection, which is what the
// Fig. 10 getInfo resolution relies on.
//
// Service connections are not owned by sessions: each mediator keeps a
// shared per-(color, address) pool (internal/network/pool) that sessions
// check connections out of for the duration of a flow sequence and back
// into when they end, so N concurrent client sessions cost far fewer
// than N dials per color. A sethost retarget is a pool-key change — the
// old connection returns to the pool for whichever session next wants
// that address — and a transport fault discards the connection and
// flushes its key before the redial/replay recovery path runs.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/backend"
	"starlink/internal/bind"
	"starlink/internal/discovery"
	"starlink/internal/message"
	"starlink/internal/mtl"
	"starlink/internal/network"
	"starlink/internal/network/pool"
	"starlink/internal/rcache"
)

// Errors reported by the engine.
var (
	// ErrConfig is wrapped by all configuration validation errors.
	ErrConfig = errors.New("engine: invalid configuration")
	// ErrUnexpectedAction is returned when a client performs an action the
	// automaton does not expect at the current state.
	ErrUnexpectedAction = errors.New("engine: unexpected action")
	// ErrStuck is returned when the automaton has no executable transition.
	ErrStuck = errors.New("engine: automaton stuck")
	// ErrDeadline is returned when a flow exhausts its deadline budget
	// (Config.FlowDeadline / the flow_deadline directive): some blocking
	// step — a dial, a pool wait, a retry backoff, a coalesced cache
	// wait, an exchange — would run past the flow's wall-clock deadline.
	// The flow fails fast instead; errors.Is(err, ErrDeadline) detects
	// it, and Stats.DeadlineExceeded counts it.
	ErrDeadline = errors.New("engine: flow deadline exceeded")
	// errClosing aborts service exchanges when the mediator is being
	// torn down (Close, or Shutdown past its deadline).
	errClosing = errors.New("engine: mediator closing")
)

// Side configures one color of the mediator.
type Side struct {
	// Binder maps between concrete packets and abstract action messages.
	Binder bind.Binder
	// Net carries the color's network semantics (transport defaults tcp).
	Net network.Semantics
	// Target is the service address for client-role colors (ignored on the
	// server color).
	Target string
	// Dialer optionally overrides how service connections are opened for
	// this side; tests use it to inject faulty transports. Defaults to
	// the network engine with the configured dial timeout.
	Dialer func(sem network.Semantics, addr string, framer network.Framer) (network.Conn, error)
}

// RetryPolicy is the explicit fault-recovery policy for service-side
// exchanges: every field means exactly what it says, with no magic
// zero or negative values. A nil Config.Retry takes the defaults
// (DefaultRetryAttempts, DefaultBackoff).
type RetryPolicy struct {
	// Attempts is how many times a failed service exchange is retried on
	// a fresh connection before the session fails (0 = the first failure
	// is final).
	Attempts int
	// Backoff seeds the backoff window: before retry n the session
	// sleeps a full-jitter delay drawn uniformly from
	// (0, min(Backoff<<n, MaxBackoff)] (0 = retry immediately).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth of the backoff window
	// (0 = DefaultMaxBackoff). The shifted window saturates at the cap,
	// including when the shift itself overflows at high attempt counts.
	MaxBackoff time.Duration
	// Disabled turns fault recovery off entirely; the other fields are
	// ignored.
	Disabled bool
}

// attempts is the number of retries the policy allows.
func (p RetryPolicy) attempts() int {
	if p.Disabled {
		return 0
	}
	return p.Attempts
}

// delay computes the sleep before retry attempt+1: full jitter drawn
// uniformly over an exponentially growing window, clamped to
// MaxBackoff. The shift saturates at the cap — for attempt counts
// large enough that Backoff<<attempt would overflow, the window is the
// cap, never a skipped sleep (a signed-overflow result used to fail
// the d > 0 guard and turn the retry loop hot).
func (p RetryPolicy) delay(attempt int) time.Duration {
	if p.Disabled || p.Backoff <= 0 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	window := max
	// Overflow-safe saturation: Backoff<<attempt fits below the cap iff
	// Backoff <= max>>attempt (for attempt < 64; beyond that the window
	// is certainly saturated).
	if attempt < 64 && p.Backoff <= max>>uint(attempt) {
		window = p.Backoff << uint(attempt)
	}
	return time.Duration(rand.Int64N(int64(window))) + 1
}

// Config assembles a mediator.
type Config struct {
	// Merged is the concrete merged automaton to interpret.
	Merged *automata.Merged
	// ServerColor is the color whose application connects *to* the
	// mediator (defaults to Merged.Color1).
	ServerColor int
	// Sides configures each color.
	Sides map[int]*Side
	// HostMap resolves logical hosts set by the MTL sethost keyword to
	// real addresses (the simulation stand-in for DNS/deployment).
	HostMap map[string]string
	// Backends maps a logical service name to a replica set
	// (internal/backend). A client-role Side.Target — or a HostMap
	// resolution — that names a key of this map is load-balanced instead
	// of dialled literally: each pool checkout picks a live replica via
	// the set's policy, every exchange outcome is reported back for
	// passive outlier ejection, and the fault-recovery redial retries a
	// different healthy replica. An ejected replica's idle pooled
	// connections are flushed. The mediator owns the sets: Start starts
	// their health probers, Close/Shutdown stop them.
	Backends map[string]*backend.Set
	// Discovery holds the reconcilers (internal/discovery) that drive
	// Backends membership from live sources. The mediator owns them
	// like it owns the sets: Start launches their reconcile loops,
	// Close/Shutdown stops them (closing their sources), and a gateway
	// hot swap adopts their counters via AdoptDiscovery. Every
	// reconciler must drive a set present in Backends.
	Discovery []*discovery.Reconciler
	// Funcs adds extra MTL functions.
	Funcs map[string]mtl.Func
	// ExchangeTimeout bounds each network exchange (default 10s).
	ExchangeTimeout time.Duration
	// Retry, when non-nil, is the service-side fault-recovery policy;
	// nil means the defaults (DefaultRetryAttempts retries with
	// DefaultBackoff initial backoff, capped at DefaultMaxBackoff).
	Retry *RetryPolicy
	// FlowDeadline is the per-flow deadline budget: the wall-clock
	// ceiling, measured from the arrival of a flow's first client
	// request, that every blocking step of the flow's mediation —
	// service dials, pool checkout waits, retry backoffs, coalesced
	// cache waits and the exchanges themselves — is charged against.
	// Per-attempt network deadlines become min(ExchangeTimeout,
	// remaining budget), so worst-case flow latency is bounded by the
	// budget instead of stacking attempts × ExchangeTimeout + backoffs.
	// An exhausted budget fails the flow fast with ErrDeadline.
	// 0 means the default, 2 × ExchangeTimeout; a negative value
	// disables flow budgets entirely (pre-budget behavior).
	FlowDeadline time.Duration
	// Cache, when non-nil, enables the shared cross-flow response cache
	// (internal/rcache) for the declared service operations. All
	// sessions of the mediator share one cache; a flow about to send a
	// cacheable request either serves a deep-cloned cached reply, joins
	// an in-flight identical exchange, or executes it and populates the
	// cache.
	Cache *CachePolicy
	// DialTimeout bounds each service dial — and, pool-side, how long a
	// session waits for a pooled connection when the pool is at its
	// bound (default network.DefaultDialTimeout).
	DialTimeout time.Duration
	// PoolSize caps the pooled service connections per (color, address).
	// A session needing a connection beyond the cap waits, bounded by
	// DialTimeout, for another session to check one in. 0 means
	// DefaultPoolSize.
	PoolSize int
	// PoolIdle bounds how long an idle pooled service connection stays
	// warm for the next session before it is reaped. 0 means
	// DefaultPoolIdle; a negative value disables idle keep-alive (every
	// checkin closes its connection), effectively turning pooling off.
	PoolIdle time.Duration
	// Trace, when non-nil, receives one event per observable mediation
	// step (state entered, transition fired, redial, session error). It
	// is called synchronously from session goroutines and must be fast,
	// non-blocking and concurrency-safe; a panicking hook is recovered
	// and counted in Stats.HookPanics instead of killing the session.
	Trace func(TraceEvent)
	// Observer, when non-nil, receives the same events as Trace through
	// the structured sink interface (internal/observe implements it).
	// The same contract applies: called synchronously from session
	// goroutines, must not block, panics are recovered and counted.
	Observer Observer
}

// Observer is a structured trace sink: it receives every TraceEvent a
// Config.Trace hook would, as an interface so observability subsystems
// can be plugged in without closure indirection. Implementations must
// be concurrency-safe and must not block — they run inline on the
// mediation hot path.
type Observer interface {
	ObserveTrace(TraceEvent)
}

// retryPolicy resolves the effective fault-recovery policy: the Retry
// field when set (validated), else the defaults.
func (c Config) retryPolicy() (RetryPolicy, error) {
	if c.Retry == nil {
		return RetryPolicy{Attempts: DefaultRetryAttempts, Backoff: DefaultBackoff}, nil
	}
	p := *c.Retry
	if p.Disabled {
		return RetryPolicy{Disabled: true}, nil
	}
	if p.Attempts < 0 {
		return RetryPolicy{}, fmt.Errorf("%w: negative RetryPolicy.Attempts %d", ErrConfig, p.Attempts)
	}
	if p.Backoff < 0 {
		return RetryPolicy{}, fmt.Errorf("%w: negative RetryPolicy.Backoff %v", ErrConfig, p.Backoff)
	}
	if p.MaxBackoff < 0 {
		return RetryPolicy{}, fmt.Errorf("%w: negative RetryPolicy.MaxBackoff %v", ErrConfig, p.MaxBackoff)
	}
	return p, nil
}

// DefaultRetryAttempts, DefaultBackoff and DefaultMaxBackoff are the
// fault-recovery defaults applied when Config.Retry is nil (the cap
// also applies whenever RetryPolicy.MaxBackoff is left zero).
const (
	DefaultRetryAttempts = 2
	DefaultBackoff       = 50 * time.Millisecond
	DefaultMaxBackoff    = 2 * time.Second
)

// CacheRule declares one cacheable service operation: replies to it
// are stored for TTL and served to later identical requests. Vary,
// when non-empty, restricts which request field paths participate in
// the cache key (the spec's `vary=` clause); otherwise the whole
// outbound field tree does.
type CacheRule struct {
	// TTL is how long a stored reply stays servable. It must be > 0.
	TTL time.Duration
	// Vary lists the request field paths that distinguish cache
	// entries; empty means all fields.
	Vary []string
}

// CachePolicy is the spec-driven configuration of the shared response
// cache (the `cacheable`/`invalidates`/`cache_size`/`cache_shards`
// directives of a .mediator document).
type CachePolicy struct {
	// Rules maps cacheable service operation names to their rule.
	Rules map[string]CacheRule
	// Invalidates maps a write operation to the cacheable operations
	// whose entries it flushes when sent.
	Invalidates map[string][]string
	// MaxEntries bounds the number of stored replies (0 = rcache
	// default).
	MaxEntries int
	// Shards is the number of independently locked cache segments
	// (0 = rcache default).
	Shards int
}

// DefaultPoolSize and DefaultPoolIdle are the service-pool defaults
// applied when Config leaves the knobs zero.
const (
	DefaultPoolSize = pool.DefaultMaxActive
	DefaultPoolIdle = pool.DefaultIdleTimeout
)

// TraceKind classifies TraceEvents.
type TraceKind int

// Trace event kinds.
const (
	// TraceState fires when a session's automaton enters a state.
	TraceState TraceKind = iota
	// TraceTransition fires after a transition executes.
	TraceTransition
	// TraceRedial fires when a service connection is replaced (fault
	// recovery or a sethost retarget after the first checkout).
	TraceRedial
	// TraceError fires when a session ends with an error; it doubles as
	// the end marker of the flow that failed.
	TraceError
	// TraceFlowStart fires when a flow's first client request arrives.
	TraceFlowStart
	// TraceFlowEnd fires when an automaton traversal completes cleanly.
	TraceFlowEnd
	// TraceSessionEnd fires when a session's goroutine exits, however it
	// ended; observers use it to release per-session state.
	TraceSessionEnd
	// TraceCacheHit fires when a service exchange is answered from the
	// shared response cache instead of the network — either a stored
	// reply (Attempt 0) or a coalesced join of an in-flight leader's
	// exchange (Attempt 1). State carries the operation name.
	TraceCacheHit
)

// String names the kind for logs.
func (k TraceKind) String() string {
	switch k {
	case TraceState:
		return "state"
	case TraceTransition:
		return "transition"
	case TraceRedial:
		return "redial"
	case TraceError:
		return "error"
	case TraceFlowStart:
		return "flow-start"
	case TraceFlowEnd:
		return "flow-end"
	case TraceSessionEnd:
		return "session-end"
	case TraceCacheHit:
		return "cache-hit"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observable step of a mediation session, delivered to
// the Config.Trace hook.
type TraceEvent struct {
	// Session numbers the client connection (1-based, in accept order).
	Session uint64
	// Flow numbers the automaton traversal within the session (1-based).
	Flow uint64
	// Kind selects which fields below are meaningful.
	Kind TraceKind
	// Time is when the event was emitted.
	Time time.Time
	// State is the state entered (TraceState) or the transition's target
	// (TraceTransition).
	State string
	// Transition is "from->to" for TraceTransition.
	Transition string
	// Color is the side a message transition or redial concerns.
	Color int
	// Attempt is the retry attempt for TraceRedial (0 for a sethost
	// retarget).
	Attempt int
	// Elapsed is the step duration for TraceTransition and TraceFlowEnd.
	Elapsed time.Duration
	// Err carries the cause for TraceError and fault-driven TraceRedial.
	Err error
	// Wire is a truncated copy (at most MaxTraceWire bytes) of the last
	// wire message received before a TraceError — the raw packet a parse
	// or translate fault choked on, for post-hoc diagnosis.
	Wire []byte
	// Budget is the flow's remaining deadline budget when the event was
	// emitted — negative once the deadline has passed, and zero when
	// flow budgets are disabled or the flow has not started.
	Budget time.Duration
}

// MaxTraceWire bounds the wire capture attached to TraceError events.
const MaxTraceWire = 256

// Stats are a mediator's lifetime counters.
type Stats struct {
	// Sessions is the number of client connections accepted.
	Sessions uint64
	// Flows is the number of complete automaton traversals.
	Flows uint64
	// Translations is the number of γ transitions executed.
	Translations uint64
	// TranslationsCompiled counts γ executions served by the compiled
	// fast path; TranslationsInterpreted counts the tree-walking
	// fallback (a program that failed to compile at deploy time).
	// Compiled + Interpreted == Translations.
	TranslationsCompiled, TranslationsInterpreted uint64
	// MessagesIn and MessagesOut count messages received from and sent to
	// either side.
	MessagesIn, MessagesOut uint64
	// Failures is the number of sessions that ended with an error other
	// than the client disconnecting between flows.
	Failures uint64
	// Redials counts service connections that were replaced during a
	// session — after a transport fault or a sethost retarget.
	Redials uint64
	// RetriesExhausted counts service exchanges that still failed after
	// every configured retry.
	RetriesExhausted uint64
	// ClientFailures counts failed exchanges with the client application
	// (unparseable requests, unexpected actions, reply send errors).
	ClientFailures uint64
	// ServiceFailures counts service-side exchanges that failed for good
	// (retries exhausted, protocol errors, unparseable replies).
	ServiceFailures uint64
	// PoolHits counts service-connection checkouts served by an idle
	// pooled connection instead of a dial.
	PoolHits uint64
	// PoolDials counts service-connection checkouts that opened a fresh
	// connection. PoolDials well below Sessions is pool reuse at work.
	PoolDials uint64
	// PoolEvictions counts pooled connections closed early: idle
	// timeout, health-check rejection, idle overflow, or fault discard.
	PoolEvictions uint64
	// PoolWaitTimeouts counts checkout waiters that gave up — their
	// flow budget or dial timeout expired while the pool was at its
	// bound with no connection checked back in.
	PoolWaitTimeouts uint64
	// DeadlineExceeded counts flows that failed fast because their
	// deadline budget (Config.FlowDeadline) ran out mid-mediation.
	DeadlineExceeded uint64
	// HookPanics counts panics recovered from user Trace/Observer hooks.
	// A non-zero value means an observability callback is buggy; the
	// mediation flows themselves were unaffected.
	HookPanics uint64
	// CacheHits counts service exchanges answered from a stored reply;
	// CacheMisses counts cache lookups that led a fresh exchange;
	// CacheCoalesced counts exchanges that joined an in-flight leader;
	// CacheEvictions counts entries dropped by LRU pressure or TTL
	// expiry; CacheInvalidations counts entries flushed by write
	// operations. All zero unless Config.Cache is set.
	CacheHits, CacheMisses, CacheCoalesced uint64
	CacheEvictions, CacheInvalidations     uint64
}

// statCounters is the internal atomic form of Stats.
type statCounters struct {
	sessions, flows, translations   atomic.Uint64
	translationsCompiled            atomic.Uint64
	translationsInterpreted         atomic.Uint64
	messagesIn, messagesOut         atomic.Uint64
	failures                        atomic.Uint64
	redials, retriesExhausted       atomic.Uint64
	clientFailures, serviceFailures atomic.Uint64
	hookPanics                      atomic.Uint64
	deadlineExceeded                atomic.Uint64
}

// Mediator executes merged automata, one session per accepted client
// connection. Its lifecycle: New → Start → (Shutdown | Close).
// Shutdown is the graceful path (stop accepting, drain in-flight flows,
// harvest idle sessions, close the pool); Close is the abrupt one.
type Mediator struct {
	cfg   Config
	retry RetryPolicy
	// flowBudget is the resolved per-flow deadline budget (0 = budgets
	// disabled via a negative Config.FlowDeadline).
	flowBudget time.Duration
	programs   map[int]*mtl.Program         // transition index -> parsed MTL
	compiled   map[int]*mtl.CompiledProgram // transition index -> compiled fast path
	outs       map[string]outgoing          // state -> outgoing transitions, precomputed
	stats      statCounters
	// clientColors lists the colors the mediator plays the client role
	// for — the colors whose pool keys a backend ejection must flush.
	clientColors []int

	// rcache is the shared cross-flow response cache (nil unless
	// Config.Cache declares cacheable operations); cacheRules and
	// cacheInvalidates are the validated per-operation lookups consulted
	// on every service send.
	rcache           *rcache.Cache
	cacheRules       map[string]CacheRule
	cacheInvalidates map[string][]string

	// transitions, exchanges and translate are the latency histograms
	// behind Snapshot: per-transition execution, per-service-exchange
	// round-trip and per-γ-translation, lock-free log-scale bins.
	transitions histogram
	exchanges   histogram
	translate   histogram

	// draining refuses new flows (set by Shutdown); stopping aborts
	// in-flight service retries (set by Close and the Shutdown deadline).
	draining atomic.Bool
	stopping atomic.Bool

	mu       sync.Mutex
	closed   bool
	listener network.Listener
	pool     *pool.Pool
	conns    map[network.Conn]struct{} // client conns of live sessions
	svcConns map[network.Conn]struct{} // checked-out service conns
	idle     map[network.Conn]struct{} // client conns parked between flows
	wg       sync.WaitGroup
}

// Stats returns a snapshot of the mediator's counters.
func (m *Mediator) Stats() Stats {
	st := Stats{
		Sessions:                m.stats.sessions.Load(),
		Flows:                   m.stats.flows.Load(),
		Translations:            m.stats.translations.Load(),
		TranslationsCompiled:    m.stats.translationsCompiled.Load(),
		TranslationsInterpreted: m.stats.translationsInterpreted.Load(),
		MessagesIn:              m.stats.messagesIn.Load(),
		MessagesOut:             m.stats.messagesOut.Load(),
		Failures:                m.stats.failures.Load(),
		Redials:                 m.stats.redials.Load(),
		RetriesExhausted:        m.stats.retriesExhausted.Load(),
		ClientFailures:          m.stats.clientFailures.Load(),
		ServiceFailures:         m.stats.serviceFailures.Load(),
		HookPanics:              m.stats.hookPanics.Load(),
		DeadlineExceeded:        m.stats.deadlineExceeded.Load(),
	}
	m.mu.Lock()
	p := m.pool
	m.mu.Unlock()
	if p != nil {
		ps := p.Stats()
		st.PoolHits, st.PoolDials, st.PoolEvictions = ps.Hits, ps.Dials, ps.Evictions()
		st.PoolWaitTimeouts = ps.WaitTimeouts
	}
	if m.rcache != nil {
		cs := m.rcache.Stats()
		st.CacheHits, st.CacheMisses, st.CacheCoalesced = cs.Hits, cs.Misses, cs.Coalesced
		st.CacheEvictions, st.CacheInvalidations = cs.Evictions, cs.Invalidations
	}
	return st
}

// CacheFlush drops every reply from the cross-flow response cache,
// forcing the next cacheable exchange of each key back to the service.
// It returns the number of entries dropped, and is a no-op for
// mediators deployed without a cache policy.
func (m *Mediator) CacheFlush() int {
	if m.rcache == nil {
		return 0
	}
	return m.rcache.Flush()
}

// New validates the configuration and pre-compiles all γ MTL programs.
func New(cfg Config) (*Mediator, error) {
	if cfg.Merged == nil {
		return nil, fmt.Errorf("%w: no merged automaton", ErrConfig)
	}
	if cfg.ServerColor == 0 {
		cfg.ServerColor = cfg.Merged.Color1
	}
	if cfg.ExchangeTimeout == 0 {
		cfg.ExchangeTimeout = 10 * time.Second
	}
	if cfg.PoolSize < 0 {
		return nil, fmt.Errorf("%w: negative PoolSize %d", ErrConfig, cfg.PoolSize)
	}
	retry, err := cfg.retryPolicy()
	if err != nil {
		return nil, err
	}
	colors := map[int]bool{}
	serviceSends := map[string]bool{}
	for _, t := range cfg.Merged.Transitions {
		if t.Kind == automata.KindMessage {
			colors[t.Color] = true
			if t.Color != cfg.ServerColor && t.Action == automata.Send {
				serviceSends[t.Message] = true
			}
		}
	}
	for c := range colors {
		side := cfg.Sides[c]
		if side == nil || side.Binder == nil {
			return nil, fmt.Errorf("%w: no binder for color %d", ErrConfig, c)
		}
		if c != cfg.ServerColor && side.Target == "" {
			return nil, fmt.Errorf("%w: no target address for client color %d", ErrConfig, c)
		}
	}
	if !colors[cfg.ServerColor] {
		return nil, fmt.Errorf("%w: server color %d has no transitions", ErrConfig, cfg.ServerColor)
	}
	for name, set := range cfg.Backends {
		if set == nil {
			return nil, fmt.Errorf("%w: backend set %q is nil", ErrConfig, name)
		}
	}
	for i, rec := range cfg.Discovery {
		if rec == nil {
			return nil, fmt.Errorf("%w: discovery reconciler %d is nil", ErrConfig, i)
		}
		if cfg.Backends[rec.SetName()] != rec.Backend() {
			return nil, fmt.Errorf("%w: discovery reconciler %d drives set %q, which is not in Backends", ErrConfig, i, rec.SetName())
		}
	}
	if cfg.Cache != nil {
		if cfg.Cache.MaxEntries < 0 {
			return nil, fmt.Errorf("%w: negative CachePolicy.MaxEntries %d", ErrConfig, cfg.Cache.MaxEntries)
		}
		if cfg.Cache.Shards < 0 {
			return nil, fmt.Errorf("%w: negative CachePolicy.Shards %d", ErrConfig, cfg.Cache.Shards)
		}
		for op, rule := range cfg.Cache.Rules {
			if !serviceSends[op] {
				return nil, fmt.Errorf("%w: cacheable operation %q is not a service-side invocation of the automaton", ErrConfig, op)
			}
			if rule.TTL <= 0 {
				return nil, fmt.Errorf("%w: cacheable operation %q needs a positive ttl, got %v", ErrConfig, op, rule.TTL)
			}
		}
		for op, targets := range cfg.Cache.Invalidates {
			if !serviceSends[op] {
				return nil, fmt.Errorf("%w: invalidating operation %q is not a service-side invocation of the automaton", ErrConfig, op)
			}
			for _, target := range targets {
				if _, ok := cfg.Cache.Rules[target]; !ok {
					return nil, fmt.Errorf("%w: operation %q invalidates %q, which is not declared cacheable", ErrConfig, op, target)
				}
			}
		}
	}
	// Resolve the flow budget: explicit when positive, derived from the
	// exchange timeout when left zero (one full exchange plus headroom
	// for dial, retries and translation), disabled when negative.
	var flowBudget time.Duration
	switch {
	case cfg.FlowDeadline > 0:
		flowBudget = cfg.FlowDeadline
	case cfg.FlowDeadline == 0:
		flowBudget = 2 * cfg.ExchangeTimeout
	}
	m := &Mediator{
		cfg:        cfg,
		retry:      retry,
		flowBudget: flowBudget,
		programs:   make(map[int]*mtl.Program),
		compiled:   make(map[int]*mtl.CompiledProgram),
		outs:       make(map[string]outgoing),
		conns:      make(map[network.Conn]struct{}),
		svcConns:   make(map[network.Conn]struct{}),
		idle:       make(map[network.Conn]struct{}),
	}
	for c := range colors {
		if c != cfg.ServerColor {
			m.clientColors = append(m.clientColors, c)
		}
	}
	sort.Ints(m.clientColors)
	if cfg.Cache != nil && len(cfg.Cache.Rules) > 0 {
		m.rcache = rcache.New(rcache.Options{
			MaxEntries: cfg.Cache.MaxEntries,
			Shards:     cfg.Cache.Shards,
		})
		m.cacheRules = cfg.Cache.Rules
		m.cacheInvalidates = cfg.Cache.Invalidates
	}
	handles := make([]string, len(cfg.Merged.States))
	for i, st := range cfg.Merged.States {
		handles[i] = st.Name
	}
	for i, t := range cfg.Merged.Transitions {
		o := m.outs[t.From]
		o.ts = append(o.ts, t)
		o.idx = append(o.idx, i)
		m.outs[t.From] = o
		if t.Kind != automata.KindGamma {
			continue
		}
		prog, err := mtl.Parse(stripComments(t.MTL))
		if err != nil {
			return nil, fmt.Errorf("%w: γ %s->%s: %v", ErrConfig, t.From, t.To, err)
		}
		m.programs[i] = prog
		// Lower to the compiled fast path. A lowering failure is not a
		// deployment error — the tree-walking interpreter remains a full
		// fallback — but in practice Compile accepts every parseable
		// program.
		if cp, err := mtl.Compile(prog, mtl.CompileOptions{Handles: handles, Funcs: cfg.Funcs}); err == nil {
			m.compiled[i] = cp
		}
	}
	return m, nil
}

// outgoing is a state's outgoing transitions with their global indices,
// precomputed in New so each automaton step is O(1) instead of a rescan
// of the whole transition list.
type outgoing struct {
	ts  []automata.MergedTransition
	idx []int
}

// stripComments drops generator comment lines so auto-generated MTL with
// unresolved-field notes still compiles.
func stripComments(src string) string {
	lines := strings.Split(src, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "#") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// poolOptions maps the mediator configuration onto the shared service
// pool: the configured bounds plus a dial hook that honours each side's
// Dialer override.
func (m *Mediator) poolOptions() pool.Options {
	opts := pool.Options{
		MaxActive:   m.cfg.PoolSize,
		IdleTimeout: m.cfg.PoolIdle,
		Dial: func(ctx context.Context, key pool.Key) (network.Conn, error) {
			side := m.cfg.Sides[key.Color]
			dial := side.Dialer
			if dial == nil {
				// The checkout context carries the dial timeout already
				// clipped to the flow's deadline budget; honour it so
				// dial time counts against the flow instead of running
				// on its own clock.
				timeout := m.cfg.DialTimeout
				if timeout <= 0 {
					timeout = network.DefaultDialTimeout
				}
				if dl, ok := ctx.Deadline(); ok {
					if rem := time.Until(dl); rem < timeout {
						timeout = rem
					}
				}
				if timeout <= 0 {
					return nil, fmt.Errorf("dial %v: %w", key, context.DeadlineExceeded)
				}
				dial = network.Engine{DialTimeout: timeout}.Dial
			}
			return dial(side.Net, key.Addr, side.Binder.Framer())
		},
	}
	if m.cfg.PoolIdle < 0 {
		// Idle keep-alive disabled: nothing is parked, so the timeout
		// reverts to the default (it only governs an empty idle set).
		opts.IdleTimeout = 0
		opts.MaxIdle = -1
	}
	return opts
}

// Start opens the shared service pool and listens for client-side
// connections.
func (m *Mediator) Start(listenAddr string) error {
	side := m.cfg.Sides[m.cfg.ServerColor]
	var eng network.Engine
	l, err := eng.Listen(side.Net, listenAddr, side.Binder.Framer())
	if err != nil {
		return err
	}
	p, err := pool.New(m.poolOptions())
	if err != nil {
		l.Close()
		return err
	}
	m.mu.Lock()
	m.listener = l
	m.pool = p
	m.mu.Unlock()
	m.startBackends()
	m.wg.Add(1)
	go m.acceptLoop()
	return nil
}

// startBackends hooks every replica set into the pool — an ejection or
// a discovery-driven removal flushes the replica's idle connections for
// every client color, since they were dialled to an endpoint now
// presumed sick (or gone) — then starts the sets' health probers and
// the discovery reconcile loops.
func (m *Mediator) startBackends() {
	flush := func(addr string) {
		m.mu.Lock()
		p := m.pool
		m.mu.Unlock()
		if p == nil {
			return
		}
		for _, color := range m.clientColors {
			p.Flush(pool.Key{Color: color, Addr: addr})
		}
	}
	for _, set := range m.cfg.Backends {
		set.OnEject(flush)
		set.OnRemove(flush)
		set.Start()
	}
	for _, rec := range m.cfg.Discovery {
		rec.Start()
	}
}

// closeBackends stops the discovery reconcilers (so membership stops
// churning first) and then every replica set's health prober
// (idempotent).
func (m *Mediator) closeBackends() {
	for _, rec := range m.cfg.Discovery {
		rec.Close()
	}
	for _, set := range m.cfg.Backends {
		set.Close()
	}
}

// Backends snapshots the mediator's replica sets, sorted by name, for
// the admin view and the -backends startup dump. Nil when the mediator
// has none.
func (m *Mediator) Backends() []backend.SetSnapshot {
	if len(m.cfg.Backends) == 0 {
		return nil
	}
	names := make([]string, 0, len(m.cfg.Backends))
	for name := range m.cfg.Backends {
		names = append(names, name)
	}
	sort.Strings(names)
	snaps := make([]backend.SetSnapshot, len(names))
	for i, name := range names {
		snaps[i] = m.cfg.Backends[name].Snapshot()
	}
	return snaps
}

// AdoptBackendHealth carries replica health state (ejections, cooloff
// deadlines, latency EWMAs) from a previous mediator's same-named sets
// into this one's, so a gateway hot swap does not forget which replicas
// are sick and re-route fresh traffic straight back into them.
func (m *Mediator) AdoptBackendHealth(prev *Mediator) {
	if prev == nil {
		return
	}
	for name, set := range m.cfg.Backends {
		if old := prev.cfg.Backends[name]; old != nil {
			set.Adopt(old)
		}
	}
}

// Discovery snapshots the mediator's discovery reconcilers, sorted by
// the set they drive, for the admin /discovery view and the -discover
// startup dump. Nil when the mediator has none.
func (m *Mediator) Discovery() []discovery.Snapshot {
	if len(m.cfg.Discovery) == 0 {
		return nil
	}
	snaps := make([]discovery.Snapshot, len(m.cfg.Discovery))
	for i, rec := range m.cfg.Discovery {
		snaps[i] = rec.Snapshot()
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Set < snaps[j].Set })
	return snaps
}

// AdoptDiscovery carries the cumulative discovery counters from a
// previous mediator's reconcilers into this one's (matched by the set
// they drive), so a gateway hot swap keeps /metrics rates continuous —
// the discovery analogue of AdoptBackendHealth.
func (m *Mediator) AdoptDiscovery(prev *Mediator) {
	if prev == nil {
		return
	}
	for _, rec := range m.cfg.Discovery {
		for _, old := range prev.cfg.Discovery {
			if old.SetName() == rec.SetName() {
				rec.Adopt(old)
			}
		}
	}
}

// PoolStats snapshots the shared service pool's occupancy (zero before
// Start). It backs the per-key pool gauges in internal/observe.
func (m *Mediator) PoolStats() pool.Stats {
	m.mu.Lock()
	p := m.pool
	m.mu.Unlock()
	if p == nil {
		return pool.Stats{}
	}
	return p.Stats()
}

// StartDetached opens the shared service pool without binding a
// client-facing listener: connections are handed in one by one via
// ServeConn. This is how a gateway hosts many mediators behind a single
// front-door listener. Lifecycle is otherwise identical to Start —
// Shutdown drains ServeConn sessions the same way it drains accepted
// ones.
func (m *Mediator) StartDetached() error {
	p, err := pool.New(m.poolOptions())
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.pool = p
	m.mu.Unlock()
	m.startBackends()
	return nil
}

// Addr returns the client-facing address, or "" for a detached
// mediator (StartDetached binds no listener).
func (m *Mediator) Addr() string {
	m.mu.Lock()
	l := m.listener
	m.mu.Unlock()
	if l == nil {
		return ""
	}
	return l.Addr().String()
}

// ServeConn runs a mediation session on a pre-established client
// connection (the gateway accept path). The session runs on its own
// goroutine; ServeConn returns immediately. The mediator takes
// ownership of conn — it is closed when the session ends. ErrDraining
// is returned (and conn left open, for the caller to retarget or
// close) when the mediator is draining, closed or not started.
func (m *Mediator) ServeConn(conn network.Conn) error {
	m.mu.Lock()
	if m.closed || m.draining.Load() || m.pool == nil {
		m.mu.Unlock()
		return ErrDraining
	}
	m.conns[conn] = struct{}{}
	// The wg.Add must happen under the lock: unlike the accept loop
	// (which holds its own wg slot), nothing else keeps Close's wg.Wait
	// from completing between the draining check and the Add.
	m.wg.Add(1)
	m.mu.Unlock()
	m.startSession(conn)
	return nil
}

// ErrDraining is returned by ServeConn when the mediator no longer
// accepts new sessions (draining, closed, or never started).
var ErrDraining = errors.New("engine: mediator draining")

func (m *Mediator) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed || m.draining.Load() {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.wg.Add(1)
		m.mu.Unlock()
		m.startSession(conn)
	}
}

// startSession spawns the session goroutine for a registered client
// connection (shared by the accept loop and ServeConn); the caller has
// already taken the session's wg slot.
func (m *Mediator) startSession(conn network.Conn) {
	id := m.stats.sessions.Add(1)
	go func() {
		defer m.wg.Done()
		s := &session{
			med:       m,
			id:        id,
			client:    conn,
			services:  make(map[int]*serviceLink),
			lastWire:  make(map[int][]byte),
			sentAt:    make(map[int]time.Time),
			dialed:    make(map[int]struct{}),
			lastFault: make(map[int]string),
		}
		s.run()
	}()
}

// Close abruptly stops the mediator: in-flight sessions are cut off,
// then everything is torn down. Use Shutdown to drain them instead.
func (m *Mediator) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.draining.Store(true)
	m.stopping.Store(true)
	var err error
	if m.listener != nil {
		err = m.listener.Close()
	}
	for c := range m.conns {
		c.Close()
	}
	for c := range m.svcConns {
		c.Close()
	}
	p := m.pool
	m.mu.Unlock()
	m.wg.Wait()
	m.closeBackends()
	if p != nil {
		p.Close()
	}
	return err
}

// Shutdown gracefully stops the mediator: it stops accepting new
// sessions, harvests sessions that are idle between flows, and lets
// in-flight flows finish — a client mid-request still receives its
// reply. When ctx expires first, the remaining sessions are aborted as
// by Close and ctx's error is returned. Either way the service pool is
// closed before Shutdown returns, and the mediator cannot be restarted.
func (m *Mediator) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	var lerr error
	if !m.draining.Swap(true) {
		if m.listener != nil {
			lerr = m.listener.Close()
		}
		for c := range m.idle {
			c.Close()
			delete(m.idle, c)
		}
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.stopping.Store(true)
		m.mu.Lock()
		for c := range m.conns {
			c.Close()
		}
		for c := range m.svcConns {
			c.Close()
		}
		m.mu.Unlock()
		<-done
	}
	m.mu.Lock()
	m.closed = true
	p := m.pool
	m.mu.Unlock()
	m.closeBackends()
	if p != nil {
		p.Close()
	}
	if err != nil {
		return err
	}
	return lerr
}

func (m *Mediator) removeConn(c network.Conn) {
	m.mu.Lock()
	delete(m.conns, c)
	delete(m.idle, c)
	m.mu.Unlock()
}

// parkIdle registers a client connection as idle between flows, making
// it harvestable by Shutdown. It reports false when the mediator is
// already draining and the session should end instead of waiting for a
// request that will never be served.
func (m *Mediator) parkIdle(c network.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.draining.Load() {
		return false
	}
	m.idle[c] = struct{}{}
	return true
}

// unparkIdle marks a client connection active again (a request arrived).
func (m *Mediator) unparkIdle(c network.Conn) {
	m.mu.Lock()
	delete(m.idle, c)
	m.mu.Unlock()
}

// checkout draws a service connection from the shared pool, bounding
// the wait — dial time and pool exhaustion alike — by the configured
// dial timeout, clipped to the flow's deadline budget when one is set
// (a non-zero budget deadline): time already spent on the flow shrinks
// the dial window instead of extending the flow past its deadline.
// Checked-out connections are tracked so an abrupt teardown can
// unblock sessions waiting on them.
func (m *Mediator) checkout(color int, addr string, budget time.Time) (network.Conn, error) {
	timeout := m.cfg.DialTimeout
	if timeout <= 0 {
		timeout = network.DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	if !budget.IsZero() && budget.Before(deadline) {
		deadline = budget
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	m.mu.Lock()
	p := m.pool
	m.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("%w: mediator not started", ErrConfig)
	}
	conn, err := p.Get(ctx, pool.Key{Color: color, Addr: addr})
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.svcConns[conn] = struct{}{}
	m.mu.Unlock()
	return conn, nil
}

func (m *Mediator) untrackService(c network.Conn) {
	m.mu.Lock()
	delete(m.svcConns, c)
	m.mu.Unlock()
}

// session is one client connection's execution of the automaton. The
// automaton restarts after reaching a final state so a client can run the
// whole behaviour repeatedly on one connection.
type session struct {
	med      *Mediator
	id       uint64
	client   network.Conn
	services map[int]*serviceLink
	cache    mtl.Cache
	// env is the session's pooled MTL environment: one Env reused across
	// every automaton traversal (Reset clears it between flows), so a
	// steady-state flow allocates no fresh Messages/Vars maps. bound
	// holds the per-state target messages, index-aligned with
	// Merged.States and likewise recycled between flows; parsed inbound
	// messages replace these bindings for the rest of a flow, which is
	// why the slice (not the Env) is the owner.
	env   *mtl.Env
	bound []*message.Message
	// lastWire keeps the last request sent to each service color so a
	// reply lost to a transport fault can be replayed on a fresh
	// connection.
	lastWire map[int][]byte
	// sentAt records when each color's in-flight request was first sent,
	// feeding the per-exchange latency histogram at reply time.
	sentAt map[int]time.Time
	// dialed marks colors that have been checked out at least once, so a
	// replacement checkout is counted as a redial.
	dialed map[int]struct{}
	// lastFault remembers, per balanced color, the replica address of the
	// most recent fault, so the recovery redial avoids retrying the
	// replica that just failed while other candidates are live. Cleared
	// by the next successful exchange.
	lastFault map[int]string
	// hostOverride holds the current flow's sethost retarget; it is
	// cleared when the automaton restarts so one traversal's retarget
	// cannot leak into the next.
	hostOverride string
	// flow numbers the current automaton traversal (1-based); flowT0 is
	// when its first client request arrived, and lastRecv keeps the last
	// wire message received — attached (truncated) to error traces so
	// the flight recorder can show what a parse fault choked on.
	flow     uint64
	flowT0   time.Time
	lastRecv []byte
	// budget is the wall-clock deadline of the current flow, stamped
	// when its first client request arrives (zero while idle between
	// flows, or always when flow budgets are disabled). Every blocking
	// step of the flow is charged against it.
	budget time.Time
	// flowStarted flips once the current traversal has received its
	// first client request; until then the session counts as idle and
	// may be harvested by Shutdown.
	flowStarted bool
	// pendingAction / pendingRequest track a client request that has not
	// been answered yet, so a mediation failure can be reported as a
	// protocol-level fault instead of a dropped connection.
	pendingAction  string
	pendingRequest *message.Message
	// cachePending tracks, per service color, the response-cache role of
	// the exchange between its send and receive transitions: a cached or
	// coalesced reply waiting to be bound, a led flight to fulfil, or a
	// follower-fallback key to populate. Lazily allocated — nil for
	// mediators without a cache.
	cachePending map[int]*pendingCache
}

// pendingCache is one service color's in-progress cache interaction.
type pendingCache struct {
	// reply, when non-nil, is the deep-cloned cached (or coalesced)
	// reply to bind at the receive transition instead of reading the
	// network.
	reply *message.Message
	// flight, when non-nil, is the single-flight this session leads; it
	// is fulfilled when the real reply parses, aborted if the session
	// dies first.
	flight *rcache.Flight
	// key/op/ttl describe where a fetched reply is stored (leader
	// fulfilment or follower fallback).
	key string
	op  string
	ttl time.Duration
}

// serviceLink is a service-side connection checked out of the shared
// pool, together with the pool key's address (so a sethost retarget is
// detected as a key change), the replica set the address was picked
// from (nil for a literal target; the set's in-flight slot is held
// until the link is released) and whether a request is in flight on it
// (a connection with an unconsumed reply cannot be returned to the
// pool — the next session would read a stale reply).
type serviceLink struct {
	conn    network.Conn
	addr    string
	set     *backend.Set
	pending bool
}

// trace delivers ev to the configured hooks, stamping the session id,
// flow number and time. Each hook is shielded individually: a panic in
// one is recovered and counted without starving the other or killing
// the session goroutine mid-flow.
func (s *session) trace(ev TraceEvent) {
	m := s.med
	if m.cfg.Trace == nil && m.cfg.Observer == nil {
		return
	}
	ev.Session = s.id
	ev.Flow = s.flow
	ev.Time = time.Now()
	if !s.budget.IsZero() {
		ev.Budget = s.budget.Sub(ev.Time)
	}
	if m.cfg.Trace != nil {
		m.callHook(func() { m.cfg.Trace(ev) })
	}
	if m.cfg.Observer != nil {
		m.callHook(func() { m.cfg.Observer.ObserveTrace(ev) })
	}
}

// callHook runs one user observability callback, recovering a panic
// into the HookPanics counter so a buggy hook cannot take a session
// down with it.
func (m *Mediator) callHook(hook func()) {
	defer func() {
		if r := recover(); r != nil {
			m.stats.hookPanics.Add(1)
		}
	}()
	hook()
}

// truncWire copies at most MaxTraceWire bytes of a wire message for
// attachment to a TraceError event.
func truncWire(data []byte) []byte {
	if data == nil {
		return nil
	}
	n := len(data)
	if n > MaxTraceWire {
		n = MaxTraceWire
	}
	return append([]byte(nil), data[:n]...)
}

func (s *session) run() {
	defer func() {
		s.trace(TraceEvent{Kind: TraceSessionEnd})
		s.client.Close()
		s.med.removeConn(s.client)
		for color := range s.services {
			s.releaseService(color)
		}
		// A session dying while leading a single-flight must wake its
		// followers so they fall back to their own exchanges.
		s.abortFlights(nil)
	}()
	for {
		s.pendingAction, s.pendingRequest = "", nil
		s.hostOverride = ""
		s.flowStarted = false
		s.budget = time.Time{}
		s.flow++
		if err := s.runAutomaton(); err != nil {
			// A recv error on the very first transition of a flow is the
			// client ending the keep-alive connection, not a failure.
			if !errors.Is(err, errSessionDone) {
				s.med.stats.failures.Add(1)
				s.trace(TraceEvent{Kind: TraceError, Err: err, Wire: truncWire(s.lastRecv)})
				s.sendErrorReply(err)
			}
			return
		}
		s.med.stats.flows.Add(1)
		if s.flowStarted {
			s.trace(TraceEvent{Kind: TraceFlowEnd, Elapsed: time.Since(s.flowT0)})
		}
		if s.med.draining.Load() {
			// Shutdown in progress: the flow's reply is out, end the
			// session instead of waiting for another request.
			return
		}
	}
}

// errSessionDone marks the clean end of a session (client disconnected
// between flows, or the mediator drained it).
var errSessionDone = errors.New("engine: session done")

// recvClientRequest reads one client request. The flow-initial read
// carries no deadline — an idle keep-alive connection may sit between
// flows indefinitely — and parks the session as idle first, so a
// Shutdown can harvest clients that are merely holding their
// connection open. Once a flow has started its budget deadline is
// stamped, and mid-flow reads (the client's next request of a
// multi-exchange traversal) are bounded by it.
func (s *session) recvClientRequest() ([]byte, error) {
	if s.flowStarted {
		if err := s.client.SetDeadline(s.budget); err != nil {
			return nil, err
		}
		data, err := s.client.Recv()
		if err == nil {
			s.lastRecv = data
		}
		return data, err
	}
	if err := s.client.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	if !s.med.parkIdle(s.client) {
		return nil, errSessionDone
	}
	data, err := s.client.Recv()
	s.med.unparkIdle(s.client)
	if err != nil {
		return nil, err
	}
	s.flowStarted = true
	s.flowT0 = time.Now()
	if fb := s.med.flowBudget; fb > 0 {
		s.budget = s.flowT0.Add(fb)
	}
	s.lastRecv = data
	s.trace(TraceEvent{Kind: TraceFlowStart})
	return data, nil
}

// remaining reports the time left in the flow's deadline budget; ok is
// false when budgets are disabled or the flow has not started.
func (s *session) remaining() (time.Duration, bool) {
	if s.budget.IsZero() {
		return 0, false
	}
	return time.Until(s.budget), true
}

// exchangeDeadline is the per-attempt network deadline: the exchange
// timeout, clipped to the flow's remaining budget so attempts cannot
// stack past the flow deadline.
func (s *session) exchangeDeadline() time.Time {
	d := time.Now().Add(s.med.cfg.ExchangeTimeout)
	if !s.budget.IsZero() && s.budget.Before(d) {
		return s.budget
	}
	return d
}

// budgetExceeded records one flow-budget exhaustion and builds the
// typed fast-fail error, carrying the last transport error (if any)
// for diagnosis.
func (s *session) budgetExceeded(op string, color int, lastErr error) error {
	s.med.stats.deadlineExceeded.Add(1)
	s.med.stats.serviceFailures.Add(1)
	if lastErr != nil {
		return fmt.Errorf("%s (color %d): %w (last attempt: %v)", op, color, ErrDeadline, lastErr)
	}
	return fmt.Errorf("%s (color %d): %w", op, color, ErrDeadline)
}

// sendErrorReply reports a mediation failure to a client that is still
// waiting for an answer, if the client-side binder can build faults.
func (s *session) sendErrorReply(cause error) {
	if s.pendingAction == "" {
		return
	}
	side := s.med.cfg.Sides[s.med.cfg.ServerColor]
	replier, ok := side.Binder.(bind.ErrorReplier)
	if !ok {
		return
	}
	data, err := replier.BuildErrorReply(s.pendingAction, s.pendingRequest, cause.Error())
	if err != nil {
		return
	}
	if err := s.client.SetDeadline(time.Now().Add(s.med.cfg.ExchangeTimeout)); err != nil {
		return
	}
	if s.client.Send(data) == nil {
		s.med.stats.messagesOut.Add(1)
	}
}

// runAutomaton executes one start-to-final traversal.
func (s *session) runAutomaton() error {
	merged := s.med.cfg.Merged
	env := s.env
	if env == nil {
		env = mtl.NewEnv(&s.cache)
		env.Funcs = s.med.cfg.Funcs
		s.env = env
		s.bound = make([]*message.Message, len(merged.States))
	} else {
		env.Reset()
	}
	for i, st := range merged.States {
		// Recycle the per-state target messages: a flow's parsed inbound
		// messages are bound over these, so by the next traversal the
		// recycled tree is unreferenced and safe to truncate in place.
		msg := s.bound[i]
		if msg == nil {
			msg = message.New("")
			s.bound[i] = msg
		} else {
			msg.Name = ""
			msg.Fields = msg.Fields[:0]
		}
		env.Bind(st.Name, msg)
	}
	state := merged.Start
	lastClientAction := ""
	var lastClientRequest *message.Message
	lastServiceAction := map[int]string{}

	s.trace(TraceEvent{Kind: TraceState, State: state})
	for !merged.IsFinal(state) {
		out := s.med.outs[state]
		if len(out.ts) == 0 {
			return fmt.Errorf("%w: state %s has no outgoing transitions", ErrStuck, state)
		}
		if len(out.ts) > 1 {
			// Branch state: the client application chooses the next
			// operation. All alternatives must be client-side invocations;
			// the received action selects the branch.
			start := time.Now()
			next, err := s.execBranch(out.ts, env, &lastClientAction, &lastClientRequest)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			s.med.transitions.observe(elapsed)
			s.trace(TraceEvent{
				Kind: TraceTransition, State: next, Transition: state + "->" + next,
				Color: s.med.cfg.ServerColor, Elapsed: elapsed,
			})
			state = next
			s.trace(TraceEvent{Kind: TraceState, State: state})
			continue
		}
		t, idx := out.ts[0], out.idx[0]
		start := time.Now()
		switch t.Kind {
		case automata.KindGamma:
			env.Host = ""
			if cp, ok := s.med.compiled[idx]; ok {
				if err := cp.Exec(env); err != nil {
					return fmt.Errorf("γ %s->%s: %w", t.From, t.To, err)
				}
				s.med.stats.translationsCompiled.Add(1)
			} else {
				prog, ok := s.med.programs[idx]
				if !ok {
					// Defensive: every γ transition gets a program in New; a
					// miss means the automaton changed under us, and skipping
					// the translation would corrupt the flow.
					return fmt.Errorf("%w: no γ program for %s->%s", ErrStuck, t.From, t.To)
				}
				if err := prog.Exec(env); err != nil {
					return fmt.Errorf("γ %s->%s: %w", t.From, t.To, err)
				}
				s.med.stats.translationsInterpreted.Add(1)
			}
			s.med.stats.translations.Add(1)
			s.med.translate.observe(time.Since(start))
			if env.Host != "" {
				s.hostOverride = env.Host
			}
		case automata.KindMessage:
			if err := s.execMessage(t, env, &lastClientAction, &lastClientRequest, lastServiceAction); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		s.med.transitions.observe(elapsed)
		s.trace(TraceEvent{
			Kind: TraceTransition, State: t.To, Transition: t.From + "->" + t.To,
			Color: t.Color, Elapsed: elapsed,
		})
		state = t.To
		s.trace(TraceEvent{Kind: TraceState, State: state})
	}
	return nil
}

// execBranch receives the client's next request at a branch state and
// follows the alternative carrying that action. Every alternative must be
// a server-color Send transition (the models express "the client decides
// what to do next" only on its own invocations).
func (s *session) execBranch(
	outs []automata.MergedTransition,
	env *mtl.Env,
	lastClientAction *string,
	lastClientRequest **message.Message,
) (string, error) {
	cfg := s.med.cfg
	for _, t := range outs {
		if t.Kind != automata.KindMessage || t.Color != cfg.ServerColor || t.Action != automata.Send {
			return "", fmt.Errorf("%w: branch state %s mixes non-client-invocation alternatives",
				ErrStuck, t.From)
		}
	}
	side := cfg.Sides[cfg.ServerColor]
	data, err := s.recvClientRequest()
	if err != nil {
		return "", fmt.Errorf("%w: %v", errSessionDone, err)
	}
	s.med.stats.messagesIn.Add(1)
	action, abs, err := side.Binder.ParseRequest(data)
	if err != nil {
		s.med.stats.clientFailures.Add(1)
		return "", fmt.Errorf("parse client request: %w", err)
	}
	s.pendingAction, s.pendingRequest = action, abs
	for _, t := range outs {
		if t.Message != action {
			continue
		}
		*lastClientAction = action
		*lastClientRequest = abs
		env.Bind(t.To, abs)
		return t.To, nil
	}
	s.med.stats.clientFailures.Add(1)
	return "", fmt.Errorf("%w: got %q, automaton offers %s at %s",
		ErrUnexpectedAction, action, branchNames(outs), outs[0].From)
}

func branchNames(outs []automata.MergedTransition) string {
	names := make([]string, len(outs))
	for i, t := range outs {
		names[i] = t.Message
	}
	return strings.Join(names, "|")
}

func (s *session) execMessage(
	t automata.MergedTransition,
	env *mtl.Env,
	lastClientAction *string,
	lastClientRequest **message.Message,
	lastServiceAction map[int]string,
) error {
	cfg := s.med.cfg
	side := cfg.Sides[t.Color]
	serverSide := t.Color == cfg.ServerColor
	switch {
	case serverSide && t.Action == automata.Send:
		// Client invokes: mediator receives the request.
		data, err := s.recvClientRequest()
		if err != nil {
			return fmt.Errorf("%w: %v", errSessionDone, err) // client gone
		}
		s.med.stats.messagesIn.Add(1)
		action, abs, err := side.Binder.ParseRequest(data)
		if err != nil {
			s.med.stats.clientFailures.Add(1)
			return fmt.Errorf("parse client request: %w", err)
		}
		// Record the pending request before validating it, so even an
		// unexpected action is answered with a fault.
		s.pendingAction, s.pendingRequest = action, abs
		if action != t.Message {
			s.med.stats.clientFailures.Add(1)
			return fmt.Errorf("%w: got %q, automaton expects %q at %s",
				ErrUnexpectedAction, action, t.Message, t.From)
		}
		*lastClientAction = action
		*lastClientRequest = abs
		env.Bind(t.To, abs)
	case serverSide && t.Action == automata.Receive:
		// Client receives: mediator sends the translated reply.
		abs := env.Message(t.From)
		if abs == nil {
			abs = message.New(t.Message)
		}
		abs.Name = t.Message
		copyCorrelationFields(*lastClientRequest, abs)
		data, err := side.Binder.BuildReply(*lastClientAction, abs)
		if err != nil {
			return fmt.Errorf("build client reply: %w", err)
		}
		if err := s.client.SetDeadline(s.exchangeDeadline()); err != nil {
			return err
		}
		if err := s.client.Send(data); err != nil {
			s.med.stats.clientFailures.Add(1)
			return fmt.Errorf("send client reply: %w", err)
		}
		s.med.stats.messagesOut.Add(1)
		s.pendingAction, s.pendingRequest = "", nil
	case t.Action == automata.Send:
		// Mediator invokes the service.
		abs := env.Message(t.From)
		if abs == nil {
			abs = message.New(t.Message)
		}
		abs.Name = t.Message
		if s.med.rcache != nil && s.cacheCheck(t, abs) {
			// Answered from the cache (or a coalesced in-flight
			// exchange): no network send, the reply is parked for the
			// receive transition.
			lastServiceAction[t.Color] = t.Message
			return nil
		}
		data, err := side.Binder.BuildRequest(t.Message, abs)
		if err != nil {
			s.abortFlight(t.Color, err)
			return fmt.Errorf("build service request: %w", err)
		}
		if err := s.serviceSend(t.Color, data); err != nil {
			s.abortFlight(t.Color, err)
			return err
		}
		s.med.stats.messagesOut.Add(1)
		lastServiceAction[t.Color] = t.Message
	default:
		// Mediator receives the service reply.
		if pc := s.cachePending[t.Color]; pc != nil && pc.reply != nil {
			// Serve the parked cached/coalesced reply without touching
			// the network.
			delete(s.cachePending, t.Color)
			abs := pc.reply
			abs.Name = t.Message
			env.Bind(t.To, abs)
			return nil
		}
		data, err := s.serviceRecv(t.Color)
		if err != nil {
			s.abortFlight(t.Color, err)
			return err
		}
		s.med.stats.messagesIn.Add(1)
		abs, err := side.Binder.ParseReply(lastServiceAction[t.Color], data)
		if err != nil {
			s.abortFlight(t.Color, err)
			s.med.stats.serviceFailures.Add(1)
			return fmt.Errorf("parse service reply: %w", err)
		}
		abs.Name = t.Message
		if pc := s.cachePending[t.Color]; pc != nil {
			delete(s.cachePending, t.Color)
			if pc.flight != nil {
				s.med.rcache.Fulfill(pc.flight, abs, pc.ttl)
			} else {
				s.med.rcache.Put(pc.op, pc.key, abs, pc.ttl)
			}
		}
		env.Bind(t.To, abs)
	}
	return nil
}

// cacheCheck runs the response-cache protocol for one service-side
// invocation: write operations flush the entries they invalidate, and
// cacheable operations are looked up. It reports true when the reply
// is already in hand (cache hit or coalesced join) and the network
// exchange must be skipped; false means the caller proceeds with the
// real exchange, with cachePending recording how its reply feeds back
// into the cache.
func (s *session) cacheCheck(t automata.MergedTransition, abs *message.Message) bool {
	m := s.med
	if targets := m.cacheInvalidates[t.Message]; len(targets) > 0 {
		m.rcache.Invalidate(targets)
	}
	rule, ok := m.cacheRules[t.Message]
	if !ok {
		return false
	}
	// The cache key uses the logical target — a backend set name when the
	// color is balanced — so a reply cached via one replica is served for
	// identical requests routed to any replica.
	key := rcache.Key(t.Message, s.serviceTarget(t.Color), abs, rule.Vary)
	reply, flight, leader := m.rcache.Acquire(t.Message, key)
	if reply != nil {
		s.parkReply(t.Color, reply)
		s.trace(TraceEvent{Kind: TraceCacheHit, Color: t.Color, State: t.Message})
		return true
	}
	if leader {
		s.setPending(t.Color, &pendingCache{flight: flight, key: key, op: t.Message, ttl: rule.TTL})
		return false
	}
	// Follower: wait for the leader's exchange. Bound the wait by the
	// exchange timeout — the leader's own exchange is bounded by it too
	// — clipped to this flow's remaining budget. A budget already gone
	// skips the wait entirely; the fallback exchange below then fails
	// fast through serviceSend's own budget check.
	wait := m.cfg.ExchangeTimeout
	if rem, ok := s.remaining(); ok && rem < wait {
		wait = rem
	}
	start := time.Now()
	rep, err := flight.Wait(wait)
	if err == nil {
		s.parkReply(t.Color, rep)
		s.trace(TraceEvent{Kind: TraceCacheHit, Color: t.Color, State: t.Message,
			Attempt: 1, Elapsed: time.Since(start)})
		return true
	}
	// Leader aborted (or timed out): fall back to a direct exchange and
	// populate the cache ourselves.
	s.setPending(t.Color, &pendingCache{key: key, op: t.Message, ttl: rule.TTL})
	return false
}

func (s *session) parkReply(color int, reply *message.Message) {
	s.setPending(color, &pendingCache{reply: reply})
}

func (s *session) setPending(color int, pc *pendingCache) {
	if s.cachePending == nil {
		s.cachePending = make(map[int]*pendingCache)
	}
	s.cachePending[color] = pc
}

// abortFlight releases one color's cache bookkeeping after its
// exchange failed: a led flight is aborted so followers fall back.
func (s *session) abortFlight(color int, err error) {
	pc := s.cachePending[color]
	if pc == nil {
		return
	}
	delete(s.cachePending, color)
	if pc.flight != nil {
		s.med.rcache.Abort(pc.flight, err)
	}
}

// abortFlights releases every color's pending cache state (session
// teardown).
func (s *session) abortFlights(err error) {
	for color := range s.cachePending {
		s.abortFlight(color, err)
	}
}

// serviceSend delivers a composed request to a service color, retrying
// on a fresh connection when the pooled one turns out to be broken. The
// wire bytes are remembered so a later lost reply can replay them.
// Every attempt — dial, send, backoff — is charged against the flow's
// deadline budget; an exhausted budget fails fast with ErrDeadline.
func (s *session) serviceSend(color int, data []byte) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if rem, ok := s.remaining(); ok && rem <= 0 {
			return s.budgetExceeded("send service request", color, lastErr)
		}
		link, err := s.serviceConn(color, attempt)
		if err == nil {
			if err = link.conn.SetDeadline(s.exchangeDeadline()); err == nil {
				link.pending = true
				err = link.conn.Send(data)
			}
			if err == nil {
				s.lastWire[color] = data
				s.sentAt[color] = time.Now()
				return nil
			}
			if !network.IsTransportError(err) {
				s.med.stats.serviceFailures.Add(1)
				return fmt.Errorf("send service request: %w", err)
			}
			s.evictService(color, err)
		}
		lastErr = err
		if attempt >= s.med.retry.attempts() || s.med.stopping.Load() {
			s.med.stats.retriesExhausted.Add(1)
			s.med.stats.serviceFailures.Add(1)
			return fmt.Errorf("send service request (color %d): retries exhausted: %w", color, lastErr)
		}
		if !s.backoff(attempt) {
			return s.budgetExceeded("send service request", color, lastErr)
		}
	}
}

// serviceRecv reads a service reply, recovering from transport faults by
// redialling and replaying the in-flight request on the new connection.
// Like serviceSend, every attempt is charged against the flow's
// deadline budget: each read deadline is min(ExchangeTimeout,
// remaining budget), and a flow whose budget runs out mid-recovery
// fails fast with ErrDeadline instead of stacking further attempts.
func (s *session) serviceRecv(color int) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if rem, ok := s.remaining(); ok && rem <= 0 {
			return nil, s.budgetExceeded("recv service reply", color, lastErr)
		}
		data, err := s.tryServiceRecv(color, attempt)
		if err == nil {
			s.lastRecv = data
			var elapsed time.Duration
			if t0, ok := s.sentAt[color]; ok {
				elapsed = time.Since(t0)
				s.med.exchanges.observe(elapsed)
				delete(s.sentAt, color)
			}
			if link, ok := s.services[color]; ok {
				link.pending = false
				if link.set != nil {
					// A completed round trip is the replica's health
					// signal: it feeds the latency EWMA and clears any
					// avoid-on-redial hint.
					link.set.Report(link.addr, elapsed, nil)
					delete(s.lastFault, color)
				}
			}
			return data, nil
		}
		if !network.IsTransportError(err) {
			s.med.stats.serviceFailures.Add(1)
			return nil, fmt.Errorf("recv service reply: %w", err)
		}
		s.evictService(color, err)
		lastErr = err
		if attempt >= s.med.retry.attempts() || s.lastWire[color] == nil || s.med.stopping.Load() {
			// Nothing to replay means retrying cannot produce the reply.
			s.med.stats.retriesExhausted.Add(1)
			s.med.stats.serviceFailures.Add(1)
			return nil, fmt.Errorf("recv service reply (color %d): retries exhausted: %w", color, lastErr)
		}
		if !s.backoff(attempt) {
			return nil, s.budgetExceeded("recv service reply", color, lastErr)
		}
	}
}

// tryServiceRecv performs one receive attempt; on a retry (attempt > 0)
// it first replays the remembered request so the fresh connection has
// something to answer.
func (s *session) tryServiceRecv(color, attempt int) ([]byte, error) {
	link, err := s.serviceConn(color, attempt)
	if err != nil {
		return nil, err
	}
	if err := link.conn.SetDeadline(s.exchangeDeadline()); err != nil {
		return nil, err
	}
	if attempt > 0 {
		link.pending = true
		if err := link.conn.Send(s.lastWire[color]); err != nil {
			return nil, err
		}
	}
	return link.conn.Recv()
}

// backoff sleeps the policy's jittered, capped delay before retry
// attempt+1, bounded by the flow's remaining deadline budget. It
// reports false — without sleeping — when the remaining budget could
// not fit both the sleep and a meaningful retry, so the caller fails
// fast instead of burning the budget's tail on a doomed attempt.
func (s *session) backoff(attempt int) bool {
	d := s.med.retry.delay(attempt)
	if rem, ok := s.remaining(); ok && d >= rem {
		return false
	}
	if d > 0 {
		time.Sleep(d)
	}
	return true
}

// releaseService checks a color's connection back into the shared pool.
// A connection with an unconsumed reply in flight would poison its next
// user, so it is discarded instead of parked.
func (s *session) releaseService(color int) {
	link, ok := s.services[color]
	if !ok {
		return
	}
	delete(s.services, color)
	s.med.untrackService(link.conn)
	if link.set != nil {
		link.set.Release(link.addr)
	}
	key := pool.Key{Color: color, Addr: link.addr}
	if link.pending {
		s.med.pool.Discard(key, link.conn)
	} else {
		s.med.pool.Put(key, link.conn)
	}
}

// evictService reports a broken service connection to the pool so the
// next exchange checks out a fresh one, and flushes the key's idle
// siblings: they were dialled to the same dead endpoint, and vetting
// them one by one would burn the retry budget on stale sockets. A
// balanced replica additionally gets the fault reported to its set —
// feeding passive ejection — and is remembered so the recovery redial
// picks a different live replica.
func (s *session) evictService(color int, cause error) {
	link, ok := s.services[color]
	if !ok {
		return
	}
	delete(s.services, color)
	s.med.untrackService(link.conn)
	if link.set != nil {
		link.set.Release(link.addr)
		link.set.Report(link.addr, 0, cause)
		s.lastFault[color] = link.addr
	}
	key := pool.Key{Color: color, Addr: link.addr}
	s.med.pool.Discard(key, link.conn)
	s.med.pool.Flush(key)
}

// copyCorrelationFields carries binder-internal fields (labels starting
// with "_", e.g. the GIOP request id) from the request into the reply.
func copyCorrelationFields(req, reply *message.Message) {
	if req == nil || reply == nil {
		return
	}
	for _, f := range req.Fields {
		if strings.HasPrefix(f.Label, "_") && reply.Field(f.Label) == nil {
			reply.Add(f.Clone())
		}
	}
}

// serviceTarget resolves the current logical target of a client-role
// color, honouring the flow's sethost retarget via the host map. The
// result is either a literal address or the name of a backend replica
// set — resolving a set to a concrete replica is serviceConn's job, so
// cache keys and retarget detection stay per-service, not per-replica.
func (s *session) serviceTarget(color int) string {
	addr := s.med.cfg.Sides[color].Target
	if s.hostOverride != "" {
		if mapped, ok := s.med.cfg.HostMap[s.hostOverride]; ok {
			addr = mapped
		}
	}
	return addr
}

// serviceConn returns (checking out of the pool lazily) the connection
// towards a client-role color. A held connection is kept only while it
// still points at the target the flow wants: a sethost retarget that
// fires after the first checkout is a pool-key change — the old
// connection goes back to the pool for its own key — as is a transport
// fault (via evictService). A target naming a backend replica set is
// resolved to a concrete replica by the set's balancing policy,
// avoiding the last faulted replica; the session then sticks to that
// replica until release or fault. Replacement checkouts are counted as
// Redials; attempt > 0 marks a fault-recovery redial in the trace.
func (s *session) serviceConn(color, attempt int) (*serviceLink, error) {
	target := s.serviceTarget(color)
	set := s.med.cfg.Backends[target]
	if link, ok := s.services[color]; ok {
		if link.set == set && (set != nil || link.addr == target) {
			return link, nil
		}
		// Retargeted after checkout: the connection is healthy, it just
		// points somewhere this flow no longer wants to talk to.
		s.releaseService(color)
	}
	if s.med.stopping.Load() {
		return nil, fmt.Errorf("service connection (color %d, %s): %w", color, target, errClosing)
	}
	addr := target
	if set != nil {
		addr = set.Pick(s.lastFault[color])
	}
	conn, err := s.med.checkout(color, addr, s.budget)
	if err != nil {
		if set != nil {
			// The in-flight slot Pick took is never used; a failed
			// checkout is a replica fault for ejection accounting.
			set.Release(addr)
			set.Report(addr, 0, err)
			s.lastFault[color] = addr
		}
		return nil, fmt.Errorf("service connection (color %d, %s): %w", color, addr, err)
	}
	link := &serviceLink{conn: conn, addr: addr, set: set}
	if _, redialed := s.dialed[color]; redialed {
		s.med.stats.redials.Add(1)
		s.trace(TraceEvent{Kind: TraceRedial, Color: color, State: addr, Attempt: attempt})
	} else {
		s.dialed[color] = struct{}{}
	}
	s.services[color] = link
	return link, nil
}
