package engine_test

import (
	"testing"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/network"
	"starlink/internal/protocol/slp"
	"starlink/internal/protocol/ssdp"
)

// TestE10DiscoveryMediation extends the evaluation to the discovery
// domain of the Starlink lineage: a UPnP/SSDP client searches for
// "urn:schemas-upnp-org:service:Printer:1" while the only registry is an
// SLP Directory Agent advertising "service:printer:lpr". Middleware
// (HTTP-over-UDP vs binary SLP) AND vocabulary differ; the mediator
// resolves both, with the maptype() vocabulary table as the
// application-level model.
func TestE10DiscoveryMediation(t *testing.T) {
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer da.Close()
	da.Register("service:printer:lpr", slp.URLEntry{
		URL: "service:printer:lpr://printer1.example:515", Lifetime: 300,
	})

	slpBinder, err := bind.NewSLPBinder()
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.DiscoveryMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SSDPBinder{}, Net: network.Semantics{Transport: "udp"}},
			2: {Binder: slpBinder, Net: network.Semantics{Transport: "udp"}, Target: da.Addr()},
		},
		Funcs: casestudy.DiscoveryFuncs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	// The unmodified SSDP client searches through the mediator.
	responses, err := ssdp.Search(med.Addr(), "urn:schemas-upnp-org:service:Printer:1", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 1 {
		t.Fatalf("responses = %+v", responses)
	}
	got := responses[0]
	if got.ST != "urn:schemas-upnp-org:service:Printer:1" {
		t.Errorf("ST = %q", got.ST)
	}
	if got.Location != "service:printer:lpr://printer1.example:515" {
		t.Errorf("Location = %q", got.Location)
	}
	if got.USN != "uuid:starlink-mediated::urn:schemas-upnp-org:service:Printer:1" {
		t.Errorf("USN = %q", got.USN)
	}

	// A second search on the same socket: the automaton restarted.
	responses, err = ssdp.Search(med.Addr(), "urn:schemas-upnp-org:service:Printer:1", 1, 1)
	if err != nil || len(responses) != 1 {
		t.Fatalf("second search: %v (%d)", err, len(responses))
	}
}

// TestDiscoveryUnmappedTypeFailsSession shows the vocabulary table is
// load-bearing: a search target with no SLP mapping cannot be mediated.
func TestDiscoveryUnmappedTypeFailsSession(t *testing.T) {
	da, err := slp.NewDirectoryAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer da.Close()

	slpBinder, err := bind.NewSLPBinder()
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.DiscoveryMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SSDPBinder{}, Net: network.Semantics{Transport: "udp"}},
			2: {Binder: slpBinder, Net: network.Semantics{Transport: "udp"}, Target: da.Addr()},
		},
		Funcs: casestudy.DiscoveryFuncs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()
	if _, err := ssdp.Search(med.Addr(), "urn:unmapped:thing", 1, 1); err == nil {
		t.Error("unmapped search target produced a response")
	}
}
