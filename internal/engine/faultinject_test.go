package engine_test

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
)

// faultyDialer wraps the real network dial so each service connection a
// session opens can be scripted with faults. Connections are recorded in
// dial order.
type faultyDialer struct {
	mu     sync.Mutex
	conns  []*network.FaultConn
	script func(dial int, fc *network.FaultConn)
}

func (d *faultyDialer) dial(sem network.Semantics, addr string, framer network.Framer) (network.Conn, error) {
	var eng network.Engine
	inner, err := eng.Dial(sem, addr, framer)
	if err != nil {
		return nil, err
	}
	fc := network.NewFaultConn(inner)
	d.mu.Lock()
	n := len(d.conns)
	d.conns = append(d.conns, fc)
	d.mu.Unlock()
	if d.script != nil {
		d.script(n, fc)
	}
	return fc, nil
}

func (d *faultyDialer) dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

// startAddPlusWithDialer wires the Fig. 7/8 Add->Plus mediator with an
// instrumented service-side dialer and fast retry timing.
func startAddPlusWithDialer(t *testing.T, d *faultyDialer, tweak func(*engine.Config)) *engine.Mediator {
	t.Helper()
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr(), Dialer: d.dial},
		},
		ExchangeTimeout: 2 * time.Second,
		Retry:           &engine.RetryPolicy{Attempts: engine.DefaultRetryAttempts, Backoff: time.Millisecond},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	med, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	return med
}

// TestServiceRecvFaultRecovered: the first service connection dies while
// the mediator waits for the reply. The session must evict it, redial,
// replay the request, and answer the client as if nothing happened.
func TestServiceRecvFaultRecovered(t *testing.T) {
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		if dial == 0 {
			fc.ScriptRecv(network.Fault{}) // first reply lost
		}
	}}
	med := startAddPlusWithDialer(t, d, nil)
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
	if err != nil {
		t.Fatalf("flow did not survive recv fault: %v", err)
	}
	if results[0].ValueString() != "42" {
		t.Errorf("Add = %s", results[0].ValueString())
	}
	if got := d.dials(); got != 2 {
		t.Errorf("dials = %d, want 2 (original + redial)", got)
	}
	st := med.Stats()
	if st.Redials != 1 || st.RetriesExhausted != 0 || st.Failures != 0 || st.ServiceFailures != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServiceSendFaultRecovered: the cached connection breaks at send
// time (the classic poisoned keep-alive socket). The request must be
// retried on a fresh connection.
func TestServiceSendFaultRecovered(t *testing.T) {
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		if dial == 0 {
			fc.ScriptSend(network.Fault{})
		}
	}}
	med := startAddPlusWithDialer(t, d, nil)
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2))
	if err != nil {
		t.Fatalf("flow did not survive send fault: %v", err)
	}
	if results[0].ValueString() != "3" {
		t.Errorf("Add = %s", results[0].ValueString())
	}
	st := med.Stats()
	if st.Redials != 1 || st.Failures != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRetriesExhaustedCounted: every connection fails, so the session
// must give up after the configured retries, fail exactly once, and
// count the exhaustion exactly once.
func TestRetriesExhaustedCounted(t *testing.T) {
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		fc.ScriptSend(network.Fault{})
	}}
	med := startAddPlusWithDialer(t, d, func(cfg *engine.Config) {
		cfg.Retry = &engine.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded against a permanently failing service")
	}
	st := med.Stats()
	if st.RetriesExhausted != 1 {
		t.Errorf("RetriesExhausted = %d, want 1", st.RetriesExhausted)
	}
	if st.ServiceFailures != 1 {
		t.Errorf("ServiceFailures = %d, want 1", st.ServiceFailures)
	}
	if st.Failures != 1 {
		t.Errorf("Failures = %d, want 1", st.Failures)
	}
	if st.ClientFailures != 0 {
		t.Errorf("ClientFailures = %d, want 0", st.ClientFailures)
	}
	// 1 original dial + 2 retries.
	if got := d.dials(); got != 3 {
		t.Errorf("dials = %d, want 3", got)
	}
	if st.Redials != 2 {
		t.Errorf("Redials = %d, want 2", st.Redials)
	}
}

// TestRetryDisabled: RetryPolicy.Disabled turns recovery off — the
// first transport fault fails the session.
func TestRetryDisabled(t *testing.T) {
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		fc.ScriptSend(network.Fault{})
	}}
	med := startAddPlusWithDialer(t, d, func(cfg *engine.Config) {
		cfg.Retry = &engine.RetryPolicy{Disabled: true}
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded with retries disabled")
	}
	if got := d.dials(); got != 1 {
		t.Errorf("dials = %d, want 1 (no retries)", got)
	}
	if st := med.Stats(); st.Redials != 0 {
		t.Errorf("Redials = %d, want 0", st.Redials)
	}
}

// TestRetryDelaySpacing: the jittered backoff still sleeps between
// attempts — the failed exchange runs all its retries and finishes
// within the sum of the per-attempt windows (base + 2*base) plus
// slack, never hanging or hot-looping.
func TestRetryDelaySpacing(t *testing.T) {
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		fc.ScriptSend(network.Fault{})
	}}
	const base = 40 * time.Millisecond
	med := startAddPlusWithDialer(t, d, func(cfg *engine.Config) {
		cfg.Retry = &engine.RetryPolicy{Attempts: 2, Backoff: base}
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded")
	}
	// Full jitter draws each sleep from (0, base<<attempt], so only the
	// upper bound is deterministic: 40ms + 80ms plus scheduling slack.
	if elapsed := time.Since(start); elapsed > 3*base+2*time.Second {
		t.Errorf("failure after %v, want <= %v + slack", elapsed, 3*base)
	}
	if got := d.dials(); got != 3 {
		t.Errorf("dials = %d, want 3 (both retries ran)", got)
	}
}

// TestTraceHookObservesMediation: the Trace hook sees states, transitions
// and the fault-recovery redial, all stamped with the session id.
func TestTraceHookObservesMediation(t *testing.T) {
	var mu sync.Mutex
	var events []engine.TraceEvent
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		if dial == 0 {
			fc.ScriptRecv(network.Fault{})
		}
	}}
	med := startAddPlusWithDialer(t, d, func(cfg *engine.Config) {
		cfg.Trace = func(ev engine.TraceEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	kinds := map[engine.TraceKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Session != 1 {
			t.Errorf("event %+v: session = %d, want 1", ev, ev.Session)
		}
	}
	if kinds[engine.TraceState] == 0 || kinds[engine.TraceTransition] == 0 {
		t.Errorf("missing state/transition events: %v", kinds)
	}
	if kinds[engine.TraceRedial] != 1 {
		t.Errorf("redial events = %d, want 1", kinds[engine.TraceRedial])
	}
	if kinds[engine.TraceError] != 0 {
		t.Errorf("unexpected error events: %d", kinds[engine.TraceError])
	}
	// Kinds render for logs.
	for _, k := range []engine.TraceKind{engine.TraceState, engine.TraceTransition, engine.TraceRedial, engine.TraceError} {
		if k.String() == "" {
			t.Errorf("empty TraceKind string for %d", int(k))
		}
	}
}

// TestProtocolErrorNotRetried: a service answering garbage (an
// unparseable frame would be a protocol error, not a transport fault)
// must not trigger redial storms. Simulated by injecting a non-transport
// error at recv time.
func TestProtocolErrorNotRetried(t *testing.T) {
	protoErr := errors.New("malformed reply")
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		fc.ScriptRecv(network.Fault{Err: protoErr})
	}}
	med := startAddPlusWithDialer(t, d, nil)
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded past a protocol error")
	}
	if got := d.dials(); got != 1 {
		t.Errorf("dials = %d, want 1 (protocol errors are not retried)", got)
	}
	st := med.Stats()
	if st.Redials != 0 || st.RetriesExhausted != 0 {
		t.Errorf("stats = %+v, want no retry activity", st)
	}
	if st.ServiceFailures != 1 {
		t.Errorf("ServiceFailures = %d, want 1", st.ServiceFailures)
	}
}
