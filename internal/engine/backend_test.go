package engine_test

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/backend"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
)

// addrFaultDialer wraps the real network dial, losing every reply read
// from one poisoned address and counting dials per address.
type addrFaultDialer struct {
	badAddr string

	mu    sync.Mutex
	dials map[string]int
}

func (d *addrFaultDialer) dial(sem network.Semantics, addr string, framer network.Framer) (network.Conn, error) {
	var eng network.Engine
	inner, err := eng.Dial(sem, addr, framer)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.dials == nil {
		d.dials = map[string]int{}
	}
	d.dials[addr]++
	d.mu.Unlock()
	if addr == d.badAddr {
		fc := network.NewFaultConn(inner)
		fc.ScriptRecv(network.Fault{})
		return fc, nil
	}
	return inner, nil
}

func (d *addrFaultDialer) dialsTo(addr string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials[addr]
}

// TestBackendFaultEjectsAndRedialsSurvivor: the service side targets a
// two-replica backend set whose first replica loses every reply. The
// fault must eject that replica and the recovery redial must land on
// the survivor — the client sees a correct answer, not a failure — and
// a later session must go straight to the survivor without touching
// the ejected replica again.
func TestBackendFaultEjectsAndRedialsSurvivor(t *testing.T) {
	plusOp := map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	}
	bad, err := soap.NewServer("127.0.0.1:0", "/soap", plusOp)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bad.Close() })
	good, err := soap.NewServer("127.0.0.1:0", "/soap", plusOp)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { good.Close() })

	// Round-robin picks the replicas in declaration order, so the first
	// session deterministically lands on the poisoned replica.
	set, err := backend.New("plus", []string{bad.Addr(), good.Addr()}, backend.Options{
		FailThreshold: 1,
		Cooloff:       time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &addrFaultDialer{badAddr: bad.Addr()}
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: "plus", Dialer: d.dial},
		},
		Backends:        map[string]*backend.Set{"plus": set},
		ExchangeTimeout: 2 * time.Second,
		Retry:           &engine.RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })

	for i := 0; i < 2; i++ {
		client, err := giop.Dial(med.Addr(), "calc")
		if err != nil {
			t.Fatal(err)
		}
		results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
		client.Close()
		if err != nil {
			t.Fatalf("session %d did not survive the replica fault: %v", i+1, err)
		}
		if results[0].ValueString() != "42" {
			t.Errorf("session %d: Add = %s", i+1, results[0].ValueString())
		}
	}

	st := med.Stats()
	if st.Failures != 0 || st.ServiceFailures != 0 || st.RetriesExhausted != 0 {
		t.Errorf("stats = %+v, want no failures", st)
	}
	if st.Redials != 1 {
		t.Errorf("Redials = %d, want exactly the one recovery redial", st.Redials)
	}
	if got := d.dialsTo(bad.Addr()); got != 1 {
		t.Errorf("dials to the ejected replica = %d, want 1 (session 2 must avoid it)", got)
	}

	// The sessions release their service links asynchronously after the
	// client hangs up; wait for the in-flight slots to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inFlight := 0
		for _, rs := range set.Snapshot().Replicas {
			inFlight += int(rs.InFlight)
		}
		if inFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight slots never drained: %d held", inFlight)
		}
		time.Sleep(time.Millisecond)
	}

	snaps := med.Backends()
	if len(snaps) != 1 || snaps[0].Name != "plus" {
		t.Fatalf("Backends() = %+v, want the plus set", snaps)
	}
	for _, rs := range snaps[0].Replicas {
		switch rs.Addr {
		case bad.Addr():
			if rs.Live || rs.Ejections != 1 {
				t.Errorf("poisoned replica: live=%v ejections=%d, want ejected once", rs.Live, rs.Ejections)
			}
		case good.Addr():
			if !rs.Live || rs.Successes == 0 {
				t.Errorf("survivor: live=%v successes=%d, want live with traffic", rs.Live, rs.Successes)
			}
		}
		if rs.InFlight != 0 {
			t.Errorf("replica %s leaked %d in-flight slots", rs.Addr, rs.InFlight)
		}
	}
}
