package engine_test

import (
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// panickyObserver blows up on every event after the first few, like a
// buggy user-supplied sink would.
type panickyObserver struct{ seen atomic.Uint64 }

func (p *panickyObserver) ObserveTrace(engine.TraceEvent) {
	if p.seen.Add(1) > 2 {
		panic("observer bug")
	}
}

// TestHookPanicsDoNotKillSessions pins the hook-hardening contract: a
// Trace callback and an Observer sink that panic must not break
// mediation — flows still complete, and the panics are counted in
// Stats.HookPanics.
func TestHookPanicsDoNotKillSessions(t *testing.T) {
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	defer pic.Close()

	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.XMLRPCMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap:  map[string]string{casestudy.PicasaHost: pic.Addr()},
		Trace:    func(engine.TraceEvent) { panic("trace hook bug") },
		Observer: &panickyObserver{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	})
	if err != nil {
		t.Fatalf("mediation failed under panicking hooks: %v", err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	if len(photos) != 1 {
		t.Fatalf("photos = %#v", photos)
	}
	c.Close()

	deadline := time.Now().Add(2 * time.Second)
	var st engine.Stats
	for time.Now().Before(deadline) {
		st = med.Stats()
		if st.Sessions == 1 && st.HookPanics > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Failures != 0 {
		t.Errorf("failures = %d, want 0", st.Failures)
	}
	if st.HookPanics == 0 {
		t.Error("HookPanics = 0, want > 0")
	}
}
