package engine

import (
	"errors"
	"testing"
	"time"
)

// TestRetryPolicyTranslation pins the single retry surface: a nil
// Retry means the documented defaults, an explicit policy is taken
// literally, and Disabled short-circuits everything else.
func TestRetryPolicyTranslation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want RetryPolicy
	}{
		{"nil policy means defaults", Config{},
			RetryPolicy{Attempts: DefaultRetryAttempts, Backoff: DefaultBackoff}},
		{"explicit policy is literal", Config{Retry: &RetryPolicy{Attempts: 5, Backoff: time.Second}},
			RetryPolicy{Attempts: 5, Backoff: time.Second}},
		{"disabled ignores other fields", Config{Retry: &RetryPolicy{Attempts: 7, Backoff: time.Hour, Disabled: true}},
			RetryPolicy{Disabled: true}},
		{"explicit zero policy means zero, not defaults", Config{Retry: &RetryPolicy{}},
			RetryPolicy{}},
		{"attempts without backoff stays literal", Config{Retry: &RetryPolicy{Attempts: 1}},
			RetryPolicy{Attempts: 1}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.cfg.retryPolicy()
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("retryPolicy() = %+v, want %+v", got, tt.want)
			}
		})
	}
	t.Run("disabled policy allows no attempts", func(t *testing.T) {
		if got := (RetryPolicy{Attempts: 5, Disabled: true}).attempts(); got != 0 {
			t.Errorf("attempts() = %d, want 0", got)
		}
	})
	t.Run("negative explicit values are config errors", func(t *testing.T) {
		for name, cfg := range map[string]Config{
			"attempts":    {Retry: &RetryPolicy{Attempts: -1}},
			"backoff":     {Retry: &RetryPolicy{Backoff: -time.Second}},
			"max backoff": {Retry: &RetryPolicy{MaxBackoff: -time.Second}},
		} {
			if _, err := cfg.retryPolicy(); !errors.Is(err, ErrConfig) {
				t.Errorf("%s: err = %v, want ErrConfig", name, err)
			}
		}
	})
	t.Run("disabled explicit policy skips validation", func(t *testing.T) {
		got, err := (Config{Retry: &RetryPolicy{Attempts: -1, Disabled: true}}).retryPolicy()
		if err != nil || got != (RetryPolicy{Disabled: true}) {
			t.Errorf("retryPolicy() = %+v, %v", got, err)
		}
	})
}

// TestRetryDelayJitterBounds pins the backoff computation: every delay
// is positive and within the jitter window min(Backoff<<attempt,
// MaxBackoff) — including attempt counts where the shift overflows,
// which used to skip the sleep entirely and turn the retry loop hot.
func TestRetryDelayJitterBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 1 << 30, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}
	for _, attempt := range []int{0, 1, 2, 5, 10, 31, 32, 62, 63, 64, 100, 1 << 20} {
		for i := 0; i < 64; i++ {
			d := p.delay(attempt)
			if d <= 0 {
				t.Fatalf("delay(%d) = %v, want > 0 (overflow must clamp, not skip)", attempt, d)
			}
			window := p.Backoff << uint(attempt)
			if attempt >= 6 || window > p.MaxBackoff {
				// 50ms<<6 = 3.2s > cap: the window saturates.
				window = p.MaxBackoff
			}
			if d > window {
				t.Fatalf("delay(%d) = %v, want <= window %v", attempt, d, window)
			}
		}
	}
	t.Run("zero cap adopts the default", func(t *testing.T) {
		p := RetryPolicy{Backoff: time.Second}
		for i := 0; i < 64; i++ {
			if d := p.delay(200); d <= 0 || d > DefaultMaxBackoff {
				t.Fatalf("delay = %v, want in (0, %v]", d, DefaultMaxBackoff)
			}
		}
	})
	t.Run("base above cap clamps to cap", func(t *testing.T) {
		p := RetryPolicy{Backoff: time.Hour, MaxBackoff: 10 * time.Millisecond}
		for i := 0; i < 64; i++ {
			if d := p.delay(0); d <= 0 || d > 10*time.Millisecond {
				t.Fatalf("delay = %v, want in (0, 10ms]", d)
			}
		}
	})
	t.Run("no base means no sleep", func(t *testing.T) {
		if d := (RetryPolicy{Attempts: 3}).delay(2); d != 0 {
			t.Errorf("delay = %v, want 0", d)
		}
	})
	t.Run("disabled means no sleep", func(t *testing.T) {
		if d := (RetryPolicy{Backoff: time.Second, Disabled: true}).delay(0); d != 0 {
			t.Errorf("delay = %v, want 0", d)
		}
	})
}

// TestHistogramBuckets pins the bin layout: bucket 0 is sub-microsecond,
// each following bucket doubles, and out-of-range values clamp.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},
		{time.Second, 20},
		{100 * time.Hour, histBuckets - 1},
	}
	for _, tt := range cases {
		if got := histBucket(tt.d); got != tt.want {
			t.Errorf("histBucket(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
	for i := 1; i < histBuckets; i++ {
		if histBucket(bucketLow(i)) != i {
			t.Errorf("bucketLow(%d) = %v does not map back to its bucket", i, bucketLow(i))
		}
	}
}

// TestHistogramSnapshot checks observe/snapshot round-trips, Mean, and
// the upper-bound Quantile estimate.
func TestHistogramSnapshot(t *testing.T) {
	var h histogram
	if got := h.snapshot(); got.Count != 0 || got.Mean() != 0 || got.Quantile(0.5) != 0 {
		t.Errorf("empty histogram: %+v", got)
	}
	h.observe(-time.Second) // clamped to 0
	for i := 0; i < 9; i++ {
		h.observe(time.Millisecond)
	}
	snap := h.snapshot()
	if snap.Count != 10 {
		t.Fatalf("Count = %d, want 10", snap.Count)
	}
	if want := 9 * time.Millisecond; snap.Sum != want {
		t.Errorf("Sum = %v, want %v", snap.Sum, want)
	}
	if got := snap.Mean(); got != 900*time.Microsecond {
		t.Errorf("Mean = %v, want 900µs", got)
	}
	// The 50th percentile observation is a 1ms one; its bucket's upper
	// edge is 1024µs.
	if got := snap.Quantile(0.5); got != 1024*time.Microsecond {
		t.Errorf("Quantile(0.5) = %v, want 1.024ms", got)
	}
	// The 10th percentile is the clamped zero observation: bucket 0's
	// upper edge is 1µs.
	if got := snap.Quantile(0.05); got != time.Microsecond {
		t.Errorf("Quantile(0.05) = %v, want 1µs", got)
	}
	var total uint64
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != snap.Count {
		t.Errorf("bucket counts sum to %d, Count is %d", total, snap.Count)
	}
}
