package engine_test

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
)

// startStallAddPlus wires the Add->Plus mediator against a SOAP service
// whose Plus handler stalls for the given duration before answering —
// the slow-service scenario every flow-deadline test drives.
func startStallAddPlus(t *testing.T, stall time.Duration, tweak func(*engine.Config)) *engine.Mediator {
	t.Helper()
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			time.Sleep(stall)
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
		ExchangeTimeout: 2 * time.Second,
		Retry:           &engine.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	med, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	return med
}

// TestFlowDeadlineBoundsStalledService: a service stalling past the
// flow budget fails the flow at roughly the budget — not at
// attempts × ExchangeTimeout — and the exhaustion is typed and counted.
func TestFlowDeadlineBoundsStalledService(t *testing.T) {
	const budget = 250 * time.Millisecond
	med := startStallAddPlus(t, 2*time.Second, func(cfg *engine.Config) {
		cfg.FlowDeadline = budget
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded against a stalled service")
	}
	// Without budgets the flow would take (1+3 attempts) × 2s; with them
	// the first recv deadline is clamped to the budget and the retry
	// loop fails fast. Allow generous scheduler slack, but stay far
	// under a single ExchangeTimeout.
	if elapsed := time.Since(start); elapsed >= 1500*time.Millisecond {
		t.Errorf("flow failed after %v, want < 1.5s (budget %v + slack)", elapsed, budget)
	}
	st := med.Stats()
	if st.DeadlineExceeded == 0 {
		t.Error("DeadlineExceeded = 0, want > 0")
	}
}

// TestFlowDeadlineDisabled: a negative FlowDeadline restores the
// pre-budget behavior — the stalled exchange runs to the exchange
// timeout and through its retries, and nothing is counted as a
// deadline exhaustion.
func TestFlowDeadlineDisabled(t *testing.T) {
	med := startStallAddPlus(t, 2*time.Second, func(cfg *engine.Config) {
		cfg.FlowDeadline = -1
		cfg.ExchangeTimeout = 150 * time.Millisecond
		cfg.Retry = &engine.RetryPolicy{Attempts: 1, Backoff: time.Millisecond}
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded against a stalled service")
	}
	if elapsed := time.Since(start); elapsed < 2*150*time.Millisecond {
		t.Errorf("flow failed after %v, want >= both exchange timeouts (budgets disabled)", elapsed)
	}
	if st := med.Stats(); st.DeadlineExceeded != 0 {
		t.Errorf("DeadlineExceeded = %d, want 0 with budgets disabled", st.DeadlineExceeded)
	}
}

// TestFlowDeadlineBoundsDial: time spent dialling counts against the
// flow budget — a dialer slower than the budget fails the flow fast
// instead of adding its latency on top.
func TestFlowDeadlineBoundsDial(t *testing.T) {
	slowDial := func(sem network.Semantics, addr string, framer network.Framer) (network.Conn, error) {
		time.Sleep(600 * time.Millisecond)
		var eng network.Engine
		return eng.Dial(sem, addr, framer)
	}
	med := startStallAddPlus(t, 0, func(cfg *engine.Config) {
		cfg.FlowDeadline = 150 * time.Millisecond
		cfg.Sides[2].Dialer = slowDial
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded past a dial slower than the budget")
	}
	// One slow dial runs to completion (600ms), then the budget check
	// fails the flow: no second dial, no exchange-timeout stacking.
	if elapsed := time.Since(start); elapsed >= 2*600*time.Millisecond {
		t.Errorf("flow failed after %v, want < two dial rounds", elapsed)
	}
	st := med.Stats()
	if st.DeadlineExceeded == 0 {
		t.Error("DeadlineExceeded = 0, want > 0")
	}
}

// TestFlowDeadlineBoundsPoolWait: a checkout blocked on the pool's
// MaxActive bound waits only as long as the flow budget allows; the
// abandoned wait surfaces as both a typed deadline failure and a pool
// WaitTimeouts count.
func TestFlowDeadlineBoundsPoolWait(t *testing.T) {
	const budget = 300 * time.Millisecond
	med := startStallAddPlus(t, 0, func(cfg *engine.Config) {
		cfg.FlowDeadline = budget
		cfg.PoolSize = 1
	})
	// Session A completes a flow and stays connected: its service link
	// is held for the session's lifetime, pinning the single pool slot.
	holder, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if _, err := holder.Invoke("Add", giop.IntParam(1), giop.IntParam(1)); err != nil {
		t.Fatal(err)
	}
	// Session B must wait for the slot; the wait is clipped to its flow
	// budget, far below the 10s dial timeout that used to bound it.
	waiter, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	start := time.Now()
	if _, err := waiter.Invoke("Add", giop.IntParam(2), giop.IntParam(2)); err == nil {
		t.Fatal("invoke succeeded with the pool slot held")
	}
	if elapsed := time.Since(start); elapsed >= 4*budget {
		t.Errorf("pool-blocked flow failed after %v, want ~%v", elapsed, budget)
	}
	st := med.Stats()
	if st.PoolWaitTimeouts == 0 {
		t.Error("PoolWaitTimeouts = 0, want > 0")
	}
	if st.DeadlineExceeded == 0 {
		t.Error("DeadlineExceeded = 0, want > 0")
	}
}

// TestFlowDeadlineBoundsCoalescedWait: a cache follower's wait on the
// leader's in-flight exchange is clipped to its own flow budget, so a
// stalled leader cannot park followers past their deadlines.
func TestFlowDeadlineBoundsCoalescedWait(t *testing.T) {
	const budget = 400 * time.Millisecond
	med := startStallAddPlus(t, 2*time.Second, func(cfg *engine.Config) {
		cfg.FlowDeadline = budget
		cfg.ExchangeTimeout = 10 * time.Second
		cfg.Cache = &engine.CachePolicy{Rules: map[string]engine.CacheRule{
			"Plus": {TTL: time.Minute},
		}}
	})
	var wg sync.WaitGroup
	elapsed := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := giop.Dial(med.Addr(), "calc")
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			if i == 1 {
				// Let the leader's exchange take off first.
				time.Sleep(50 * time.Millisecond)
			}
			start := time.Now()
			if _, err := client.Invoke("Add", giop.IntParam(3), giop.IntParam(4)); err == nil {
				t.Error("invoke succeeded against a stalled service")
			}
			elapsed[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	for i, e := range elapsed {
		if e >= 4*budget {
			t.Errorf("flow %d failed after %v, want bounded by ~%v", i, e, budget)
		}
	}
	if st := med.Stats(); st.DeadlineExceeded == 0 {
		t.Error("DeadlineExceeded = 0, want > 0")
	}
}

// TestFlowBudgetOnTraces: trace events of a budgeted flow carry the
// remaining budget, so span trees show where the deadline went.
func TestFlowBudgetOnTraces(t *testing.T) {
	var mu sync.Mutex
	budgets := []time.Duration{}
	med := startStallAddPlus(t, 0, func(cfg *engine.Config) {
		cfg.FlowDeadline = 5 * time.Second
		cfg.Trace = func(ev engine.TraceEvent) {
			if ev.Kind == engine.TraceFlowEnd {
				mu.Lock()
				budgets = append(budgets, ev.Budget)
				mu.Unlock()
			}
		}
	})
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(budgets) != 1 {
		t.Fatalf("flow-end traces = %d, want 1", len(budgets))
	}
	if budgets[0] <= 0 || budgets[0] > 5*time.Second {
		t.Errorf("remaining budget at flow end = %v, want in (0, 5s]", budgets[0])
	}
	if errors.Is(nil, engine.ErrDeadline) {
		t.Error("nil must not match ErrDeadline")
	}
}
