package engine_test

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// startFragileCaseStudy returns a mediator plus handles to kill pieces.
func startFragileCaseStudy(t *testing.T) (*engine.Mediator, *picasa.Service) {
	t.Helper()
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: casestudy.XMLRPCMediator(),
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages}},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap:         map[string]string{casestudy.PicasaHost: pic.Addr()},
		ExchangeTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	return med, pic
}

// TestServiceDownMidSession kills the Picasa service after a successful
// search: the in-flight session fails, but the mediator survives and the
// failure is visible to the client as a broken exchange, not a hang.
func TestServiceDownMidSession(t *testing.T) {
	med, pic := startFragileCaseStudy(t)
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()

	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatal(err)
	}
	// getInfo still works: it is served from the mediator cache (Fig. 10),
	// not from Picasa.
	pic.Close()
	if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{
		"photo_id": "photo-0001",
	}); err != nil {
		t.Fatalf("cache-resolved getInfo should survive service death: %v", err)
	}
	// getComments needs Picasa: the session must fail promptly.
	start := time.Now()
	_, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{
		"photo_id": "photo-0001",
	})
	if err == nil {
		t.Fatal("call against dead service succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failure took %v; should be bounded by the exchange timeout", elapsed)
	}
}

// TestGarbageClientBytesEndSessionOnly feeds raw garbage to the mediator:
// the session dies, the mediator keeps serving new clients.
func TestGarbageClientBytesEndSessionOnly(t *testing.T) {
	med, _ := startFragileCaseStudy(t)

	var eng network.Engine
	conn, err := eng.Dial(network.Semantics{Transport: "tcp"}, med.Addr(), network.HTTPFramer{})
	if err != nil {
		t.Fatal(err)
	}
	// A framed-but-wrong message: valid HTTP, not an XML-RPC call.
	if err := conn.Send([]byte("DELETE /nope HTTP/1.1\r\nContent-Length: 0\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Recv(); err == nil {
		t.Error("mediator answered a garbage request")
	}
	conn.Close()

	// A fresh, well-behaved client still works.
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatalf("mediator did not survive garbage session: %v", err)
	}
}

// TestClientDisconnectMidFlow drops the client between operations; the
// mediator must clean the session up and accept the next client.
func TestClientDisconnectMidFlow(t *testing.T) {
	med, _ := startFragileCaseStudy(t)
	c1 := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	if _, err := c1.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatal(err)
	}
	c1.Close() // mid-automaton

	c2 := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c2.Close()
	if _, err := c2.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "cat", "per_page": int64(1),
	}); err != nil {
		t.Fatalf("next session failed: %v", err)
	}
}

// TestConcurrentSessions runs several clients at once; sessions are
// independent (separate caches, separate service connections).
func TestConcurrentSessions(t *testing.T) {
	med, _ := startFragileCaseStudy(t)
	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
			defer c.Close()
			v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
				"text": "tree", "per_page": int64(2),
			})
			if err != nil {
				errs <- err
				return
			}
			photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
			id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
			if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// TestMediatorCloseWithLiveSession closes the mediator while a client is
// connected; Close must not hang.
func TestMediatorCloseWithLiveSession(t *testing.T) {
	med, _ := startFragileCaseStudy(t)
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		med.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with a live session")
	}
}

// TestMediationFailureSurfacesAsProtocolFault: when mediation fails
// mid-flow, the waiting client receives a proper protocol-level fault
// (here an XML-RPC fault) rather than a dropped connection.
func TestMediationFailureSurfacesAsProtocolFault(t *testing.T) {
	med, pic := startFragileCaseStudy(t)
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	if _, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{
		"photo_id": "photo-0001",
	}); err != nil {
		t.Fatal(err)
	}
	pic.Close() // the service dies
	_, err := c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{
		"photo_id": "photo-0001",
	})
	var fault *xmlrpc.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *xmlrpc.Fault", err)
	}
	if fault.Code != 500 || !strings.Contains(fault.Message, "mediation failed") {
		t.Errorf("fault = %+v", fault)
	}
	st := med.Stats()
	if st.Failures == 0 {
		t.Error("failure not counted")
	}
}

// TestServiceRestartMidSessionRecovered is the fault-tolerance
// acceptance test: the service endpoint is stopped and restarted on the
// SAME address while a client session is live. The session's cached
// connection is now dead; the next flow must transparently evict it,
// redial, replay, and complete — the client never notices.
func TestServiceRestartMidSessionRecovered(t *testing.T) {
	plusOps := map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	}
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", plusOps)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: addr},
		},
		ExchangeTimeout: 2 * time.Second,
		Retry:           &engine.RetryPolicy{Attempts: engine.DefaultRetryAttempts, Backoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Flow 1 establishes and caches the service connection.
	results, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ValueString() != "3" {
		t.Fatalf("Add = %s", results[0].ValueString())
	}

	// Restart the service on the same address: the cached connection is
	// now pointing at a dead socket.
	srv.Close()
	restarted, err := soap.NewServer(addr, "/soap", plusOps)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer restarted.Close()

	// Flow 2 on the same session must succeed via evict + redial + replay.
	results, err = client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
	if err != nil {
		t.Fatalf("flow after service restart failed: %v", err)
	}
	if results[0].ValueString() != "42" {
		t.Errorf("Add after restart = %s", results[0].ValueString())
	}

	st := med.Stats()
	if st.Redials == 0 {
		t.Error("recovery did not redial")
	}
	if st.Failures != 0 || st.RetriesExhausted != 0 {
		t.Errorf("stats = %+v, want clean recovery", st)
	}
}

// TestUnexpectedActionGetsFault: a client invoking an action the
// automaton does not offer receives a protocol fault naming the problem.
func TestUnexpectedActionGetsFault(t *testing.T) {
	med, _ := startFragileCaseStudy(t)
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	// The automaton expects search first.
	_, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": "x", "comment_text": "y",
	})
	var fault *xmlrpc.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *xmlrpc.Fault", err)
	}
	if !strings.Contains(fault.Message, "unexpected action") {
		t.Errorf("fault = %+v", fault)
	}
}
