package engine_test

import (
	"testing"

	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/protocol/jsonrpc"
)

// TestE7JSONRPCClientSameApplicationModel binds the SAME merged
// application automaton used for the XML-RPC client to a third middleware
// — JSON-RPC — without touching the model: hypothesis 2 of Section 5
// taken one protocol further. A JSON-RPC Flickr client completes the full
// case-study flow against the Picasa REST service.
func TestE7JSONRPCClientSameApplicationModel(t *testing.T) {
	med, store := startCaseStudy(t, casestudy.XMLRPCMediator(),
		&bind.JSONRPCBinder{Path: "/services/jsonrpc", Defs: casestudy.FlickrUsage().Messages})

	c := jsonrpc.NewClient(med.Addr(), "/services/jsonrpc")
	defer c.Close()

	v, err := c.Call(casestudy.FlickrSearch, map[string]any{
		"api_key": "k", "text": "tree", "per_page": float64(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("search result type %T", v)
	}
	photos, ok := res["photos"].([]any)
	if !ok || len(photos) != 3 {
		t.Fatalf("photos = %#v", res["photos"])
	}
	first, ok := photos[0].(map[string]any)
	if !ok {
		t.Fatalf("photo0 = %#v", photos[0])
	}
	id, _ := first["id"].(string)
	native := store.Search("tree", 3)
	if id != native[0].ID {
		t.Errorf("id = %q, want %q", id, native[0].ID)
	}

	// getInfo from the mediator cache.
	v, err = c.Call(casestudy.FlickrGetInfo, map[string]any{"photo_id": id})
	if err != nil {
		t.Fatal(err)
	}
	info := v.(map[string]any)
	want, _ := store.Get(id)
	if info["url"] != want.URL {
		t.Errorf("url = %#v", info["url"])
	}

	// Comments round trip.
	if _, err := c.Call(casestudy.FlickrGetComments, map[string]any{"photo_id": id}); err != nil {
		t.Fatal(err)
	}
	v, err = c.Call(casestudy.FlickrAddComment, map[string]any{
		"photo_id": id, "comment_text": "json mediated",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cid, _ := v.(map[string]any)["comment_id"].(string); cid == "" {
		t.Errorf("addComment = %#v", v)
	}
	stored, _ := store.Comments(id)
	if stored[len(stored)-1].Text != "json mediated" {
		t.Errorf("stored = %+v", stored[len(stored)-1])
	}
}
