package engine_test

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/network"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
)

// startGatedAddPlus wires the Fig. 7/8 Add->Plus mediator against a Plus
// service whose handler blocks: each call signals `entered` and waits on
// `release`, so tests can hold a mediation flow in flight at will.
func startGatedAddPlus(t *testing.T) (*engine.Mediator, chan struct{}, chan struct{}) {
	t.Helper()
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			entered <- struct{}{}
			<-release
			x, _ := strconv.Atoi(params[0].Value)
			y, _ := strconv.Atoi(params[1].Value)
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: srv.Addr()},
		},
		ExchangeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	return med, entered, release
}

// invokeAsync runs one Add invocation in the background and reports its
// outcome on the returned channel.
type invokeResult struct {
	val string
	err error
}

func invokeAsync(t *testing.T, addr string) (<-chan invokeResult, *giop.Client) {
	t.Helper()
	client, err := giop.Dial(addr, "calc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	got := make(chan invokeResult, 1)
	go func() {
		results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
		if err != nil {
			got <- invokeResult{err: err}
			return
		}
		got <- invokeResult{val: results[0].ValueString()}
	}()
	return got, client
}

// TestPoolReuseAcrossSessions is the heart of the pooled redesign: the
// service connection a session used is checked back in when the session
// ends and serves the next session without a fresh dial.
func TestPoolReuseAcrossSessions(t *testing.T) {
	d := &faultyDialer{}
	med := startAddPlusWithDialer(t, d, nil)

	const sessions = 8
	for i := 0; i < sessions; i++ {
		client, err := giop.Dial(med.Addr(), "calc")
		if err != nil {
			t.Fatal(err)
		}
		results, err := client.Invoke("Add", giop.IntParam(int64(i)), giop.IntParam(1))
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if want := strconv.Itoa(i + 1); results[0].ValueString() != want {
			t.Fatalf("session %d: Add = %s, want %s", i, results[0].ValueString(), want)
		}
		client.Close()
		// Give the session goroutine a beat to check its connection back
		// into the pool before the next session asks for one.
		time.Sleep(5 * time.Millisecond)
	}

	st := med.Stats()
	if st.Sessions != sessions {
		t.Errorf("Sessions = %d, want %d", st.Sessions, sessions)
	}
	if st.PoolDials >= st.Sessions {
		t.Errorf("PoolDials = %d, not below Sessions = %d: no reuse", st.PoolDials, st.Sessions)
	}
	if st.PoolHits == 0 {
		t.Error("PoolHits = 0, want reuse across sessions")
	}
	if got := uint64(d.dials()); got != st.PoolDials {
		t.Errorf("dialer saw %d dials, stats say %d", got, st.PoolDials)
	}
	if d.dials() > 2 {
		t.Errorf("dials = %d for %d sequential sessions, want ~1", d.dials(), sessions)
	}
}

// TestShutdownDrainsInFlightSession: a client whose request is already at
// the service keeps its session alive through Shutdown and still gets the
// reply; only then does Shutdown return.
func TestShutdownDrainsInFlightSession(t *testing.T) {
	med, entered, release := startGatedAddPlus(t)
	got, _ := invokeAsync(t, med.Addr())
	<-entered // the request has reached the service: the flow is in flight

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- med.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight flow, not cut it off.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned (%v) while a flow was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight invoke dropped: %v", r.err)
	}
	if r.val != "42" {
		t.Errorf("Add = %s, want 42", r.val)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown = %v, want clean drain", err)
	}
	// The drained mediator no longer accepts sessions.
	if c, err := giop.Dial(med.Addr(), "calc"); err == nil {
		c.Close()
		t.Error("dial after Shutdown succeeded")
	}
}

// TestShutdownDeadlineAborts: when the drain deadline passes, Shutdown
// falls back to the abrupt path — the stuck session is cut off and the
// deadline error is reported.
func TestShutdownDeadlineAborts(t *testing.T) {
	med, entered, release := startGatedAddPlus(t)
	defer close(release) // unstick the service handler at cleanup
	got, _ := invokeAsync(t, med.Addr())
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := med.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	r := <-got
	if r.err == nil {
		t.Errorf("invoke survived a forced abort, got %q", r.val)
	}
}

// TestShutdownHarvestsIdleSession: a client holding its keep-alive
// connection open between flows does not block a graceful shutdown.
func TestShutdownHarvestsIdleSession(t *testing.T) {
	d := &faultyDialer{}
	med := startAddPlusWithDialer(t, d, nil)
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err != nil {
		t.Fatal(err)
	}
	// The client never closes; its session is parked between flows.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := med.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown = %v, idle session not harvested", err)
	}
	if err := med.Close(); err != nil {
		t.Errorf("Close after Shutdown = %v", err)
	}
}

// TestFaultEvictionCountsPoolEvictions: the PR-1 redial/replay recovery
// now runs through the pool — a broken connection is discarded (not
// checked back in) and shows up in the eviction counter.
func TestFaultEvictionCountsPoolEvictions(t *testing.T) {
	d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
		if dial == 0 {
			fc.ScriptRecv(network.Fault{}) // first reply lost
		}
	}}
	med := startAddPlusWithDialer(t, d, nil)
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
	if err != nil {
		t.Fatalf("flow did not survive recv fault: %v", err)
	}
	if results[0].ValueString() != "42" {
		t.Errorf("Add = %s", results[0].ValueString())
	}
	st := med.Stats()
	if st.PoolDials != 2 {
		t.Errorf("PoolDials = %d, want 2 (original + redial)", st.PoolDials)
	}
	if st.PoolEvictions == 0 {
		t.Error("PoolEvictions = 0, want the faulted connection discarded")
	}
}

// TestRetryPolicyExplicit exercises the new sentinel-free policy through
// the engine: Disabled means the first fault is final, and Attempts
// bounds recovery exactly.
func TestRetryPolicyExplicit(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
			fc.ScriptRecv(network.Fault{})
		}}
		med := startAddPlusWithDialer(t, d, func(cfg *engine.Config) {
			cfg.Retry = &engine.RetryPolicy{Attempts: 7, Disabled: true}
		})
		client, err := giop.Dial(med.Addr(), "calc")
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
			t.Error("invoke succeeded with retries disabled and a faulted reply")
		}
		if got := d.dials(); got != 1 {
			t.Errorf("dials = %d, want 1 (no recovery attempts)", got)
		}
	})
	t.Run("attempts bound", func(t *testing.T) {
		d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
			fc.ScriptRecv(network.Fault{}) // every reply lost
		}}
		med := startAddPlusWithDialer(t, d, func(cfg *engine.Config) {
			cfg.Retry = &engine.RetryPolicy{Attempts: 1, Backoff: time.Millisecond}
		})
		client, err := giop.Dial(med.Addr(), "calc")
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
			t.Error("invoke succeeded with every reply faulted")
		}
		if got := d.dials(); got != 2 {
			t.Errorf("dials = %d, want 2 (original + one retry)", got)
		}
		if st := med.Stats(); st.RetriesExhausted != 1 {
			t.Errorf("RetriesExhausted = %d, want 1", st.RetriesExhausted)
		}
	})
	t.Run("disabled policy fails on first fault", func(t *testing.T) {
		d := &faultyDialer{script: func(dial int, fc *network.FaultConn) {
			fc.ScriptRecv(network.Fault{})
		}}
		med := startAddPlusWithDialer(t, d, func(cfg *engine.Config) {
			cfg.Retry = &engine.RetryPolicy{Disabled: true}
		})
		client, err := giop.Dial(med.Addr(), "calc")
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		if _, err := client.Invoke("Add", giop.IntParam(1), giop.IntParam(2)); err == nil {
			t.Error("invoke succeeded")
		}
		if got := d.dials(); got != 1 {
			t.Errorf("dials = %d, want 1: disabled policy must not redial", got)
		}
	})
}

// TestPoolConfigValidation: the new knobs reject nonsense values at
// construction, like the rest of Config.
func TestPoolConfigValidation(t *testing.T) {
	merged := casestudy.XMLRPCMediator()
	base := func() engine.Config {
		return engine.Config{
			Merged: merged,
			Sides: map[int]*engine.Side{
				1: {Binder: &bind.SOAPBinder{Path: "/x"}},
				2: {Binder: &bind.SOAPBinder{Path: "/y"}, Target: "127.0.0.1:1"},
			},
		}
	}
	cases := []struct {
		name  string
		tweak func(*engine.Config)
	}{
		{"negative pool size", func(c *engine.Config) { c.PoolSize = -1 }},
		{"negative retry attempts", func(c *engine.Config) { c.Retry = &engine.RetryPolicy{Attempts: -1} }},
		{"negative retry backoff", func(c *engine.Config) { c.Retry = &engine.RetryPolicy{Backoff: -time.Second} }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.tweak(&cfg)
			if _, err := engine.New(cfg); !errors.Is(err, engine.ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
	t.Run("valid knobs accepted", func(t *testing.T) {
		cfg := base()
		cfg.PoolSize = 4
		cfg.PoolIdle = -1 // negative PoolIdle is meaningful: keep-alive off
		cfg.Retry = &engine.RetryPolicy{Attempts: 3, Backoff: time.Millisecond}
		if _, err := engine.New(cfg); err != nil {
			t.Errorf("New = %v, want ok", err)
		}
	})
}

// TestSnapshotHistograms: after real flows, the latency histograms carry
// observations consistent with the counters.
func TestSnapshotHistograms(t *testing.T) {
	d := &faultyDialer{}
	med := startAddPlusWithDialer(t, d, nil)
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const flows = 3
	for i := 0; i < flows; i++ {
		if _, err := client.Invoke("Add", giop.IntParam(int64(i)), giop.IntParam(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := med.Snapshot()
	if snap.Stats.Flows != flows {
		t.Errorf("Flows = %d, want %d", snap.Stats.Flows, flows)
	}
	if snap.Exchanges.Count != flows {
		t.Errorf("Exchanges.Count = %d, want %d (one service round-trip per flow)", snap.Exchanges.Count, flows)
	}
	if snap.Transitions.Count == 0 {
		t.Error("Transitions.Count = 0, want per-transition observations")
	}
	if snap.Exchanges.Mean() <= 0 {
		t.Errorf("Exchanges.Mean() = %v, want > 0", snap.Exchanges.Mean())
	}
	if q := snap.Exchanges.Quantile(0.99); q < snap.Exchanges.Mean() {
		t.Errorf("p99 %v below mean %v", q, snap.Exchanges.Mean())
	}
}
