package engine_test

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/casestudy"
	"starlink/internal/engine"
	"starlink/internal/protocol/giop"
	"starlink/internal/protocol/soap"
	"starlink/internal/protocol/xmlrpc"
	"starlink/internal/services/photostore"
	"starlink/internal/services/picasa"
)

// startPlusService runs the SOAP addition service of Fig. 7/8.
func startPlusService(t *testing.T) *soap.Server {
	t.Helper()
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"Plus": func(params []soap.Param) ([]soap.Param, *soap.Fault) {
			var x, y int
			for _, p := range params {
				n, err := strconv.Atoi(p.Value)
				if err != nil {
					return nil, &soap.Fault{Code: "Client", Message: "non-integer " + p.Name}
				}
				switch p.Name {
				case "x":
					x = n
				case "y":
					y = n
				}
			}
			return []soap.Param{{Name: "result", Value: strconv.Itoa(x + y)}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestE4AddPlusAutoMerged is experiment E4: the Fig. 7/8 scenario run
// fully automatically — the merge of the Add and Plus usage automata is
// generated (including its γ MTL), bound to GIOP on the client side and
// SOAP on the service side, and executed; an unmodified IIOP client calls
// Add and the SOAP service's Plus answers.
func TestE4AddPlusAutoMerged(t *testing.T) {
	plusSrv := startPlusService(t)

	merged, err := automata.Merge(casestudy.AddUsage(), casestudy.PlusUsage(), automata.MergeOptions{
		Name:  "Add+Plus",
		Equiv: casestudy.AddPlusEquivalence(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Strength != automata.StronglyMerged {
		t.Fatalf("strength = %v", merged.Strength)
	}

	giopBinder, err := bind.NewGIOPBinder("calc", casestudy.AddUsage().Messages)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: giopBinder},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: plusSrv.Addr()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	// The unmodified IIOP client from the giop package.
	client, err := giop.Dial(med.Addr(), "calc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results, err := client.Invoke("Add", giop.IntParam(20), giop.IntParam(22))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ValueString() != "42" {
		t.Errorf("Add via mediator = %+v", results)
	}
	// Repeat on the same connection (automaton restarts).
	results, err = client.Invoke("Add", giop.IntParam(1), giop.IntParam(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ValueString() != "3" {
		t.Errorf("second Add = %v", results[0].ValueString())
	}
}

// startCaseStudy wires the Picasa service and a mediator for the given
// merged automaton with the given client-side binder.
func startCaseStudy(t *testing.T, merged *automata.Merged, clientBinder bind.Binder) (*engine.Mediator, *photostore.Store) {
	t.Helper()
	store := photostore.New()
	pic, err := picasa.New(store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pic.Close() })

	routes, err := bind.ParseRoutes(casestudy.PicasaRoutesDoc)
	if err != nil {
		t.Fatal(err)
	}
	restBinder, err := bind.NewRESTBinder(routes)
	if err != nil {
		t.Fatal(err)
	}
	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: clientBinder},
			2: {Binder: restBinder, Target: pic.Addr()},
		},
		HostMap: map[string]string{casestudy.PicasaHost: pic.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { med.Close() })
	return med, store
}

// TestE5E6E7XMLRPCFullCaseStudy is experiments E5 (Fig. 9 search
// binding), E6 (Fig. 10 getInfo cache mismatch) and E7 (full case study)
// for the XML-RPC client: the unmodified Flickr XML-RPC client completes
// search -> getInfo -> getComments -> addComment against the Picasa REST
// service through the Starlink mediator.
func TestE5E6E7XMLRPCFullCaseStudy(t *testing.T) {
	med, store := startCaseStudy(t, casestudy.XMLRPCMediator(),
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages})

	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()

	// E5: search via Fig. 9 binding.
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"api_key": "k", "text": "tree", "per_page": int64(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := v.(map[string]xmlrpc.Value)
	if !ok {
		t.Fatalf("search result type %T", v)
	}
	photos, ok := res["photos"].([]xmlrpc.Value)
	if !ok || len(photos) != 3 {
		t.Fatalf("photos = %#v", res["photos"])
	}
	if res["total"] != int64(3) && res["total"] != "3" {
		t.Errorf("total = %#v", res["total"])
	}
	first := photos[0].(map[string]xmlrpc.Value)
	id, _ := first["id"].(string)
	if id == "" {
		t.Fatalf("first photo = %#v", first)
	}
	// The mediated results must match a native Picasa search.
	nativePhotos := store.Search("tree", 3)
	if id != nativePhotos[0].ID {
		t.Errorf("mediated id %q != native %q", id, nativePhotos[0].ID)
	}

	// E6: getInfo is answered from the mediator's cache (Fig. 10); Picasa
	// has no such operation.
	v, err = c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{
		"api_key": "k", "photo_id": id,
	})
	if err != nil {
		t.Fatal(err)
	}
	info := v.(map[string]xmlrpc.Value)
	want, _ := store.Get(id)
	if info["url"] != want.URL {
		t.Errorf("getInfo url = %#v, want %q", info["url"], want.URL)
	}
	if info["title"] != want.Title {
		t.Errorf("getInfo title = %#v, want %q", info["title"], want.Title)
	}

	// E7: comments round trip.
	v, err = c.Call(casestudy.FlickrGetComments, map[string]xmlrpc.Value{"photo_id": id})
	if err != nil {
		t.Fatal(err)
	}
	commentsBefore := v.(map[string]xmlrpc.Value)["comments"].([]xmlrpc.Value)

	v, err = c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": id, "comment_text": "mediated comment",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cid, _ := v.(map[string]xmlrpc.Value)["comment_id"].(string); cid == "" {
		t.Errorf("addComment = %#v", v)
	}

	// The comment landed in the real Picasa store.
	after, err := store.Comments(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(commentsBefore)+1 {
		t.Errorf("store comments = %d, want %d", len(after), len(commentsBefore)+1)
	}
	last := after[len(after)-1]
	if last.Text != "mediated comment" || last.Author != "flickr-user" {
		t.Errorf("stored comment = %+v", last)
	}
}

// TestE7SOAPFullCaseStudy is the SOAP half of E7: the same application
// merge bound to SOAP instead of XML-RPC (hypothesis 2 of Section 5).
func TestE7SOAPFullCaseStudy(t *testing.T) {
	med, store := startCaseStudy(t, casestudy.SOAPMediator(),
		&bind.SOAPBinder{Path: "/services/soap"})

	c := soap.NewClient(med.Addr(), "/services/soap")
	defer c.Close()

	results, err := c.Call(casestudy.FlickrSearch,
		soap.Param{Name: "api_key", Value: "k"},
		soap.Param{Name: "text", Value: "tree"},
		soap.Param{Name: "per_page", Value: "2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	total := ""
	for _, p := range results {
		switch p.Name {
		case "photo_id":
			ids = append(ids, p.Value)
		case "total":
			total = p.Value
		}
	}
	if len(ids) != 2 || total != "2" {
		t.Fatalf("search results = %+v", results)
	}

	info, err := c.Call(casestudy.FlickrGetInfo, soap.Param{Name: "photo_id", Value: ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	url := ""
	for _, p := range info {
		if p.Name == "url" {
			url = p.Value
		}
	}
	want, _ := store.Get(ids[0])
	if url != want.URL {
		t.Errorf("url = %q, want %q", url, want.URL)
	}

	comments, err := c.Call(casestudy.FlickrGetComments, soap.Param{Name: "photo_id", Value: ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range comments {
		if p.Name == "comment" && !strings.Contains(p.Value, ":") {
			t.Errorf("comment shape = %q", p.Value)
		}
	}

	added, err := c.Call(casestudy.FlickrAddComment,
		soap.Param{Name: "photo_id", Value: ids[0]},
		soap.Param{Name: "comment_text", Value: "soap mediated"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0].Name != "comment_id" || added[0].Value == "" {
		t.Errorf("added = %+v", added)
	}
	stored, _ := store.Comments(ids[0])
	if stored[len(stored)-1].Text != "soap mediated" {
		t.Errorf("stored = %+v", stored[len(stored)-1])
	}
}

func TestUnexpectedActionEndsSession(t *testing.T) {
	med, _ := startCaseStudy(t, casestudy.XMLRPCMediator(),
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages})
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	defer c.Close()
	// The automaton expects search first; getInfo out of order fails.
	if _, err := c.Call(casestudy.FlickrGetInfo, map[string]xmlrpc.Value{"photo_id": "x"}); err == nil {
		t.Error("out-of-order action succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	merged := casestudy.XMLRPCMediator()
	cases := []struct {
		name string
		cfg  engine.Config
	}{
		{"no automaton", engine.Config{}},
		{"missing binder", engine.Config{Merged: merged, Sides: map[int]*engine.Side{
			1: {Binder: &bind.SOAPBinder{Path: "/x"}},
		}}},
		{"missing target", engine.Config{Merged: merged, Sides: map[int]*engine.Side{
			1: {Binder: &bind.SOAPBinder{Path: "/x"}},
			2: {Binder: &bind.SOAPBinder{Path: "/y"}},
		}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := engine.New(tt.cfg); !errors.Is(err, engine.ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestBadGammaMTLRejectedAtConstruction(t *testing.T) {
	merged := casestudy.XMLRPCMediator()
	for i := range merged.Transitions {
		if merged.Transitions[i].Kind == automata.KindGamma {
			merged.Transitions[i].MTL = "= broken ="
			break
		}
	}
	_, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SOAPBinder{Path: "/x"}},
			2: {Binder: &bind.SOAPBinder{Path: "/y"}, Target: "127.0.0.1:1"},
		},
	})
	if !errors.Is(err, engine.ErrConfig) {
		t.Errorf("err = %v, want ErrConfig", err)
	}
}

func TestMediatorCloseIdempotent(t *testing.T) {
	med, _ := startCaseStudy(t, casestudy.XMLRPCMediator(),
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages})
	if err := med.Close(); err != nil {
		t.Fatal(err)
	}
	if err := med.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMediatorStats(t *testing.T) {
	med, _ := startCaseStudy(t, casestudy.XMLRPCMediator(),
		&bind.XMLRPCBinder{Path: "/services/xmlrpc", Defs: casestudy.FlickrUsage().Messages})
	c := xmlrpc.NewClient(med.Addr(), "/services/xmlrpc")
	v, err := c.Call(casestudy.FlickrSearch, map[string]xmlrpc.Value{
		"text": "tree", "per_page": int64(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	photos := v.(map[string]xmlrpc.Value)["photos"].([]xmlrpc.Value)
	id := photos[0].(map[string]xmlrpc.Value)["id"].(string)
	for _, call := range []string{casestudy.FlickrGetInfo, casestudy.FlickrGetComments} {
		if _, err := c.Call(call, map[string]xmlrpc.Value{"photo_id": id}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call(casestudy.FlickrAddComment, map[string]xmlrpc.Value{
		"photo_id": id, "comment_text": "x",
	}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	deadline := time.Now().Add(2 * time.Second)
	var st engine.Stats
	for time.Now().Before(deadline) {
		st = med.Stats()
		if st.Flows == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Sessions != 1 || st.Flows != 1 {
		t.Errorf("sessions=%d flows=%d", st.Sessions, st.Flows)
	}
	if st.Translations != 7 {
		t.Errorf("translations = %d, want 7 (2 per intertwined op + 1 for getInfo)", st.Translations)
	}
	// 4 client requests + 3 service replies in; 4 client replies + 3
	// service requests out.
	if st.MessagesIn != 7 || st.MessagesOut != 7 {
		t.Errorf("messages in/out = %d/%d", st.MessagesIn, st.MessagesOut)
	}
	if st.Failures != 0 {
		t.Errorf("failures = %d", st.Failures)
	}
}
