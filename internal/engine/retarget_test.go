package engine_test

import (
	"testing"

	"starlink/internal/automata"
	"starlink/internal/bind"
	"starlink/internal/engine"
	"starlink/internal/protocol/soap"
)

// startWhoAmIServer starts a SOAP service whose "query"/"query2" ops
// answer with the server's identity, so tests can tell which endpoint a
// mediated call actually reached.
func startWhoAmIServer(t *testing.T, who string) *soap.Server {
	t.Helper()
	op := func([]soap.Param) ([]soap.Param, *soap.Fault) {
		return []soap.Param{{Name: "who", Value: who}}, nil
	}
	srv, err := soap.NewServer("127.0.0.1:0", "/soap", map[string]soap.Operation{
		"query": op, "query2": op,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func soapResult(t *testing.T, results []soap.Param, name string) string {
	t.Helper()
	for _, p := range results {
		if p.Name == name {
			return p.Value
		}
	}
	t.Fatalf("no %q param in %+v", name, results)
	return ""
}

// TestHostOverrideClearedBetweenFlows: a sethost() retarget belongs to
// the flow that executed it. Regression: the override leaked into every
// later flow of the session, so once a client took the "alt" path all
// its subsequent direct calls were misrouted to the alternate host.
func TestHostOverrideClearedBetweenFlows(t *testing.T) {
	direct := startWhoAmIServer(t, "direct")
	alt := startWhoAmIServer(t, "alt")

	merged := &automata.Merged{
		Name: "retarget-per-flow", Color1: 1, Color2: 2,
		Start: "r0", Final: []string{"rF"},
		States: []automata.MergedState{
			{Name: "r0", Colors: []int{1}},
			{Name: "a1", Colors: []int{1, 2}}, {Name: "a2", Colors: []int{2}},
			{Name: "a3", Colors: []int{2}}, {Name: "a4", Colors: []int{1, 2}},
			{Name: "a5", Colors: []int{1}},
			{Name: "d1", Colors: []int{1, 2}}, {Name: "d2", Colors: []int{2}},
			{Name: "d3", Colors: []int{2}}, {Name: "d4", Colors: []int{1, 2}},
			{Name: "d5", Colors: []int{1}},
			{Name: "rF", Colors: []int{1}},
		},
		Transitions: []automata.MergedTransition{
			// viaAlt branch: retarget to the logical host "alt".
			{From: "r0", To: "a1", Kind: automata.KindMessage, Color: 1, Action: automata.Send, Message: "pingAlt"},
			{From: "a1", To: "a2", Kind: automata.KindGamma, MTL: `sethost("alt")` + "\na2.Msg.q = a1.Msg.q"},
			{From: "a2", To: "a3", Kind: automata.KindMessage, Color: 2, Action: automata.Send, Message: "query"},
			{From: "a3", To: "a4", Kind: automata.KindMessage, Color: 2, Action: automata.Receive, Message: "query.reply"},
			{From: "a4", To: "a5", Kind: automata.KindGamma, MTL: "a5.Msg.who = a4.Msg.who"},
			{From: "a5", To: "rF", Kind: automata.KindMessage, Color: 1, Action: automata.Receive, Message: "pingAlt.reply"},
			// direct branch: no retarget, must reach the configured Target.
			{From: "r0", To: "d1", Kind: automata.KindMessage, Color: 1, Action: automata.Send, Message: "pingDirect"},
			{From: "d1", To: "d2", Kind: automata.KindGamma, MTL: "d2.Msg.q = d1.Msg.q"},
			{From: "d2", To: "d3", Kind: automata.KindMessage, Color: 2, Action: automata.Send, Message: "query"},
			{From: "d3", To: "d4", Kind: automata.KindMessage, Color: 2, Action: automata.Receive, Message: "query.reply"},
			{From: "d4", To: "d5", Kind: automata.KindGamma, MTL: "d5.Msg.who = d4.Msg.who"},
			{From: "d5", To: "rF", Kind: automata.KindMessage, Color: 1, Action: automata.Receive, Message: "pingDirect.reply"},
		},
	}

	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SOAPBinder{Path: "/in"}},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: direct.Addr()},
		},
		HostMap: map[string]string{"alt": alt.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	c := newSOAPClient(t, med.Addr(), "/in")

	// Flow 1 takes the retargeted path.
	results, err := c.Call("pingAlt", soapParam("q", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if who := soapResult(t, results, "who"); who != "alt" {
		t.Errorf("flow 1 reached %q, want alt", who)
	}
	// Flow 2 on the SAME session must go back to the default target.
	results, err = c.Call("pingDirect", soapParam("q", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if who := soapResult(t, results, "who"); who != "direct" {
		t.Errorf("flow 2 reached %q, want direct (stale sethost leaked across flows)", who)
	}
}

// TestRetargetAfterCachedConnection: a sethost() firing after the
// service connection was already dialled must evict the cached
// connection and redial. Regression: the retarget was silently ignored
// because the session kept using the cached socket.
func TestRetargetAfterCachedConnection(t *testing.T) {
	direct := startWhoAmIServer(t, "direct")
	alt := startWhoAmIServer(t, "alt")

	merged := &automata.Merged{
		Name: "retarget-mid-flow", Color1: 1, Color2: 2,
		Start: "s0", Final: []string{"sF"},
		States: []automata.MergedState{
			{Name: "s0", Colors: []int{1}}, {Name: "s1", Colors: []int{1, 2}},
			{Name: "s2", Colors: []int{2}}, {Name: "s3", Colors: []int{2}},
			{Name: "s4", Colors: []int{1, 2}}, {Name: "s5", Colors: []int{2}},
			{Name: "s6", Colors: []int{2}}, {Name: "s7", Colors: []int{1, 2}},
			{Name: "s8", Colors: []int{1}}, {Name: "sF", Colors: []int{1}},
		},
		Transitions: []automata.MergedTransition{
			{From: "s0", To: "s1", Kind: automata.KindMessage, Color: 1, Action: automata.Send, Message: "probe"},
			{From: "s1", To: "s2", Kind: automata.KindGamma, MTL: "s2.Msg.q = s1.Msg.q"},
			// First exchange goes to the configured target and caches the conn.
			{From: "s2", To: "s3", Kind: automata.KindMessage, Color: 2, Action: automata.Send, Message: "query"},
			{From: "s3", To: "s4", Kind: automata.KindMessage, Color: 2, Action: automata.Receive, Message: "query.reply"},
			// Retarget fires AFTER color 2 already has a cached connection.
			{From: "s4", To: "s5", Kind: automata.KindGamma, MTL: `sethost("alt")` + "\ns5.Msg.q = s1.Msg.q"},
			{From: "s5", To: "s6", Kind: automata.KindMessage, Color: 2, Action: automata.Send, Message: "query2"},
			{From: "s6", To: "s7", Kind: automata.KindMessage, Color: 2, Action: automata.Receive, Message: "query2.reply"},
			{From: "s7", To: "s8", Kind: automata.KindGamma, MTL: "s8.Msg.first = s4.Msg.who\ns8.Msg.second = s7.Msg.who"},
			{From: "s8", To: "sF", Kind: automata.KindMessage, Color: 1, Action: automata.Receive, Message: "probe.reply"},
		},
	}

	med, err := engine.New(engine.Config{
		Merged: merged,
		Sides: map[int]*engine.Side{
			1: {Binder: &bind.SOAPBinder{Path: "/in"}},
			2: {Binder: &bind.SOAPBinder{Path: "/soap"}, Target: direct.Addr()},
		},
		HostMap: map[string]string{"alt": alt.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	c := newSOAPClient(t, med.Addr(), "/in")
	results, err := c.Call("probe", soapParam("q", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got := soapResult(t, results, "first"); got != "direct" {
		t.Errorf("first exchange reached %q, want direct", got)
	}
	if got := soapResult(t, results, "second"); got != "alt" {
		t.Errorf("second exchange reached %q, want alt (retarget after caching ignored)", got)
	}
	// The retarget shows up as exactly one connection replacement.
	if st := med.Stats(); st.Redials != 1 {
		t.Errorf("Redials = %d, want 1", st.Redials)
	}
}
